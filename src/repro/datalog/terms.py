"""Term model for NDlog rules.

A *term* is anything that may appear as an argument of a predicate or inside
a body expression: variables, constants, arithmetic / string expressions,
builtin function calls, and aggregate specifications (which may only appear
in rule heads).

Terms are immutable value objects.  Evaluation happens against a *binding*
(a ``dict`` mapping variable names to Python values) together with a
:class:`~repro.datalog.functions.FunctionRegistry` supplying the builtin
functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence, Tuple

from .errors import EvaluationError

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "UnaryOp",
    "BinaryOp",
    "FunctionCall",
    "AggregateSpec",
    "AGGREGATE_NAMES",
    "wildcard",
]

#: Aggregate functions accepted in rule heads (lower-case canonical names).
AGGREGATE_NAMES = ("min", "max", "count", "sum", "agglist")


class Term:
    """Base class for all NDlog terms."""

    __slots__ = ()

    def variables(self) -> Iterator[str]:
        """Yield the names of all variables appearing in this term."""
        return iter(())

    def evaluate(self, binding: Mapping[str, Any], functions) -> Any:
        """Evaluate the term against *binding* using *functions* for builtins."""
        raise NotImplementedError

    def is_ground(self) -> bool:
        """Return True when the term contains no variables."""
        return not any(True for _ in self.variables())


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A named variable.  NDlog variables start with an upper-case letter.

    The special name ``_`` (underscore) is a *wildcard*: it matches any value
    and never produces a binding.
    """

    name: str

    def variables(self) -> Iterator[str]:
        if self.name != "_":
            yield self.name

    @property
    def is_wildcard(self) -> bool:
        return self.name == "_"

    def evaluate(self, binding: Mapping[str, Any], functions) -> Any:
        try:
            return binding[self.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {self.name!r}") from None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def wildcard() -> Variable:
    """Return a fresh wildcard variable term."""
    return Variable("_")


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """A literal constant: string, integer, float, bool, or None."""

    value: Any

    def evaluate(self, binding: Mapping[str, Any], functions) -> Any:
        return self.value

    def __str__(self) -> str:  # pragma: no cover - trivial
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True, slots=True)
class UnaryOp(Term):
    """A unary operation, currently ``-`` (negation) and ``!`` (logical not)."""

    op: str
    operand: Term

    def variables(self) -> Iterator[str]:
        yield from self.operand.variables()

    def evaluate(self, binding: Mapping[str, Any], functions) -> Any:
        value = self.operand.evaluate(binding, functions)
        if self.op == "-":
            return -value
        if self.op == "!":
            return not value
        raise EvaluationError(f"unknown unary operator {self.op!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.op}{self.operand}"


_BINARY_EVALUATORS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True, slots=True)
class BinaryOp(Term):
    """A binary arithmetic, comparison or boolean operation.

    String concatenation reuses ``+`` following NDlog convention (the paper
    writes ``"pathCost" + S + D + C`` for SHA-1 preimages); mixed
    string/non-string operands are coerced to ``str`` for ``+``.
    """

    op: str
    left: Term
    right: Term

    def variables(self) -> Iterator[str]:
        yield from self.left.variables()
        yield from self.right.variables()

    def evaluate(self, binding: Mapping[str, Any], functions) -> Any:
        evaluator = _BINARY_EVALUATORS.get(self.op)
        if evaluator is None:
            raise EvaluationError(f"unknown binary operator {self.op!r}")
        left = self.left.evaluate(binding, functions)
        right = self.right.evaluate(binding, functions)
        if self.op == "+" and (isinstance(left, str) or isinstance(right, str)):
            return _as_text(left) + _as_text(right)
        try:
            return evaluator(left, right)
        except TypeError as exc:
            raise EvaluationError(
                f"type error evaluating {left!r} {self.op} {right!r}: {exc}"
            ) from exc

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.left} {self.op} {self.right})"


def _as_text(value: Any) -> str:
    """Render *value* the way NDlog string concatenation expects."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


@dataclass(frozen=True, slots=True)
class FunctionCall(Term):
    """A call to a builtin function, e.g. ``f_sha1("link" + S + D + C)``."""

    name: str
    args: Tuple[Term, ...]

    def __init__(self, name: str, args: Sequence[Term] = ()):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))

    def variables(self) -> Iterator[str]:
        for arg in self.args:
            yield from arg.variables()

    def evaluate(self, binding: Mapping[str, Any], functions) -> Any:
        values = [arg.evaluate(binding, functions) for arg in self.args]
        return functions.call(self.name, values)

    def __str__(self) -> str:  # pragma: no cover - trivial
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}({args})"


@dataclass(frozen=True, slots=True)
class AggregateSpec(Term):
    """An aggregate occupying a head-attribute position.

    Examples: ``min<C>``, ``count<*>``, ``AGGLIST<RID, RLoc>``.

    ``variables_`` holds the aggregated variable names; it is empty for
    ``count<*>``.  The remaining head attributes of an aggregate rule form
    the group-by key.
    """

    func: str
    variables_: Tuple[str, ...]

    def __init__(self, func: str, variables_: Sequence[str] = ()):
        object.__setattr__(self, "func", func.lower())
        object.__setattr__(self, "variables_", tuple(variables_))

    def variables(self) -> Iterator[str]:
        yield from self.variables_

    def evaluate(self, binding: Mapping[str, Any], functions) -> Any:
        raise EvaluationError(
            "aggregate specifications cannot be evaluated as scalar terms"
        )

    @property
    def is_star(self) -> bool:
        """True for ``count<*>`` style aggregates with no named variable."""
        return not self.variables_

    def __str__(self) -> str:  # pragma: no cover - trivial
        inner = ", ".join(self.variables_) if self.variables_ else "*"
        return f"{self.func}<{inner}>"
