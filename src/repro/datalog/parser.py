"""Parser for NDlog source text.

The accepted grammar covers the language used in the ExSPAN paper:

.. code-block:: none

    program     := statement*
    statement   := declaration | rule | fact
    declaration := "materialize" "(" name "," arity ["," "keys" "(" ints ")"] ")" "."
    rule        := label head ":-" body "."
    head        := atom
    body        := literal ("," literal)*
    literal     := atom | assignment | condition
    atom        := name "(" arg ("," arg)* ")"
    arg         := ["@"] (aggregate | expression)
    aggregate   := ("min"|"max"|"count"|"sum"|"agglist") "<" ("*" | vars) ">"
    assignment  := Variable "=" expression
    condition   := expression            (boolean-valued)
    fact        := atom "."              (all arguments constant)

Comments run from ``//`` or ``#`` to end of line.  Identifiers beginning
with an upper-case letter are variables; everything else is a predicate,
function or constant symbol.  Strings are double quoted; numbers may be
integers or floats.

Example
-------
>>> from repro.datalog.parser import parse_program
>>> program = parse_program('''
...     sp1 pathCost(@S,D,C) :- link(@S,D,C).
...     sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
... ''')
>>> len(program.rules)
2
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from .ast import Assignment, Atom, Condition, Fact, Program, Rule, TableDecl
from .errors import ParseError
from .terms import (
    AGGREGATE_NAMES,
    AggregateSpec,
    BinaryOp,
    Constant,
    FunctionCall,
    Term,
    UnaryOp,
    Variable,
)

__all__ = ["parse_program", "parse_rule", "parse_term", "tokenize", "Token"]


_TOKEN_REGEX = re.compile(
    r"""
    (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>\d+\.\d+|\d+)
  | (?P<deduce>:-)
  | (?P<op>==|!=|<=|>=|&&|\|\||[-+*/%<>=!@(),.])
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ws>\s+)
  | (?P<error>.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A lexical token with its 1-based source position."""

    kind: str
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    """Split *source* into tokens, dropping whitespace and comments."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_REGEX.finditer(source):
        kind = match.lastgroup
        text = match.group()
        column = match.start() - line_start + 1
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + text.rfind("\n") + 1
            continue
        if kind == "error":
            raise ParseError(f"unexpected character {text!r}", line, column)
        tokens.append(Token(kind, text, line, column))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: Sequence[Token]):
        self._tokens = list(tokens)
        self._index = 0

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if token is None or token.text != text:
            found = token.text if token else "end of input"
            line = token.line if token else 0
            column = token.column if token else 0
            raise ParseError(f"expected {text!r}, found {found!r}", line, column)
        return self._advance()

    def _match(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self._advance()
            return True
        return False

    def _at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # ------------------------------------------------------------------ #
    # grammar productions
    # ------------------------------------------------------------------ #
    def parse_program(self, name: str = "program") -> Program:
        program = Program(name=name)
        while not self._at_end():
            self._parse_statement(program)
        return program

    def _parse_statement(self, program: Program) -> None:
        token = self._peek()
        nxt = self._peek(1)
        if token is None:
            return
        if token.text == "materialize" and nxt is not None and nxt.text == "(":
            program.add_declaration(self._parse_declaration())
            return
        if (
            token.kind == "name"
            and nxt is not None
            and nxt.kind == "name"
            and self._peek(2) is not None
            and self._peek(2).text == "("
        ):
            # label predicate( ...  => a rule
            program.add_rule(self._parse_rule())
            return
        if token.kind == "name" and nxt is not None and nxt.text == "(":
            program.add_fact(self._parse_fact())
            return
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.column
        )

    def _parse_declaration(self) -> TableDecl:
        self._expect("materialize")
        self._expect("(")
        name = self._advance().text
        self._expect(",")
        arity_token = self._advance()
        if arity_token.kind != "number":
            raise ParseError(
                "materialize arity must be an integer",
                arity_token.line,
                arity_token.column,
            )
        arity = int(arity_token.text)
        keys: Tuple[int, ...] = ()
        if self._match(","):
            self._expect("keys")
            self._expect("(")
            positions: List[int] = []
            while True:
                number = self._advance()
                positions.append(int(number.text))
                if not self._match(","):
                    break
            self._expect(")")
            keys = tuple(positions)
        self._expect(")")
        self._expect(".")
        return TableDecl(name, arity, keys)

    def _parse_rule(self) -> Rule:
        label = self._advance().text
        head = self._parse_atom()
        self._expect(":-")
        body: List[Any] = []
        while True:
            body.append(self._parse_body_literal())
            if not self._match(","):
                break
        self._expect(".")
        return Rule(label, head, body)

    def _parse_fact(self) -> Fact:
        atom = self._parse_atom()
        self._expect(".")
        values: List[Any] = []
        for arg in atom.args:
            if not isinstance(arg, Constant):
                raise ParseError(
                    f"fact {atom.name} has non-constant argument {arg}"
                )
            values.append(arg.value)
        return Fact(atom.name, values, atom.location_index)

    def _parse_body_literal(self) -> Any:
        token = self._peek()
        nxt = self._peek(1)
        if (
            token is not None
            and token.kind == "name"
            and not token.text.startswith("f_")
            and not token.text[0].isupper()
            and nxt is not None
            and nxt.text == "("
        ):
            return self._parse_atom()
        if (
            token is not None
            and token.kind == "name"
            and token.text[0].isupper()
            and nxt is not None
            and nxt.text == "="
            and (self._peek(2) is None or self._peek(2).text != "=")
        ):
            variable = Variable(self._advance().text)
            self._expect("=")
            expression = self._parse_expression()
            return Assignment(variable, expression)
        return Condition(self._parse_expression())

    def _parse_atom(self) -> Atom:
        name = self._advance().text
        self._expect("(")
        args: List[Term] = []
        location_index = 0
        location_seen = False
        index = 0
        while True:
            if self._match("@"):
                location_index = index
                location_seen = True
            args.append(self._parse_atom_argument())
            index += 1
            if not self._match(","):
                break
        self._expect(")")
        if not location_seen:
            location_index = 0
        return Atom(name, args, location_index)

    def _parse_atom_argument(self) -> Term:
        token = self._peek()
        nxt = self._peek(1)
        if (
            token is not None
            and token.kind == "name"
            and token.text.lower() in AGGREGATE_NAMES
            and nxt is not None
            and nxt.text == "<"
        ):
            return self._parse_aggregate()
        return self._parse_expression()

    def _parse_aggregate(self) -> AggregateSpec:
        func = self._advance().text.lower()
        self._expect("<")
        variables: List[str] = []
        if self._match("*"):
            pass
        else:
            while True:
                var_token = self._advance()
                variables.append(var_token.text)
                if not self._match(","):
                    break
        self._expect(">")
        return AggregateSpec(func, variables)

    # expressions, by precedence ---------------------------------------- #
    def _parse_expression(self) -> Term:
        return self._parse_or()

    def _parse_or(self) -> Term:
        left = self._parse_and()
        while self._peek() is not None and self._peek().text == "||":
            self._advance()
            right = self._parse_and()
            left = BinaryOp("||", left, right)
        return left

    def _parse_and(self) -> Term:
        left = self._parse_comparison()
        while self._peek() is not None and self._peek().text == "&&":
            self._advance()
            right = self._parse_comparison()
            left = BinaryOp("&&", left, right)
        return left

    _COMPARISON_OPS = ("==", "!=", "<=", ">=", "<", ">")

    def _parse_comparison(self) -> Term:
        left = self._parse_additive()
        token = self._peek()
        if token is not None and token.text in self._COMPARISON_OPS:
            op = self._advance().text
            right = self._parse_additive()
            return BinaryOp(op, left, right)
        if token is not None and token.text == "=":
            # Tolerate '=' used as equality inside conditions.
            self._advance()
            right = self._parse_additive()
            return BinaryOp("==", left, right)
        return left

    def _parse_additive(self) -> Term:
        left = self._parse_multiplicative()
        while self._peek() is not None and self._peek().text in ("+", "-"):
            op = self._advance().text
            right = self._parse_multiplicative()
            left = BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> Term:
        left = self._parse_unary()
        while self._peek() is not None and self._peek().text in ("*", "/", "%"):
            op = self._advance().text
            right = self._parse_unary()
            left = BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> Term:
        token = self._peek()
        if token is not None and token.text in ("-", "!"):
            op = self._advance().text
            operand = self._parse_unary()
            return UnaryOp(op, operand)
        return self._parse_primary()

    def _parse_primary(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in expression")
        if token.text == "(":
            self._advance()
            inner = self._parse_expression()
            self._expect(")")
            return inner
        if token.kind == "string":
            self._advance()
            return Constant(_unquote(token.text))
        if token.kind == "number":
            self._advance()
            if "." in token.text:
                return Constant(float(token.text))
            return Constant(int(token.text))
        if token.kind == "name":
            nxt = self._peek(1)
            if nxt is not None and nxt.text == "(":
                return self._parse_function_call()
            self._advance()
            text = token.text
            if text == "NULL" or text == "null":
                return Constant(None)
            if text == "true":
                return Constant(True)
            if text == "false":
                return Constant(False)
            if text[0].isupper() or text == "_":
                return Variable(text)
            # lower-case bare identifiers act as symbolic constants
            # (node names such as ``a`` in the paper's examples).
            return Constant(text)
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )

    def _parse_function_call(self) -> FunctionCall:
        name = self._advance().text
        self._expect("(")
        args: List[Term] = []
        if not self._match(")"):
            while True:
                args.append(self._parse_expression())
                if not self._match(","):
                    break
            self._expect(")")
        return FunctionCall(name, args)


def _unquote(text: str) -> str:
    """Strip quotes and process escapes in a string literal."""
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\").replace("\\n", "\n")


def parse_program(source: str, name: str = "program") -> Program:
    """Parse NDlog *source* into a :class:`~repro.datalog.ast.Program`."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program(name=name)
    return program


def parse_rule(source: str) -> Rule:
    """Parse a single rule from *source* (must contain exactly one rule)."""
    program = parse_program(source)
    if len(program.rules) != 1:
        raise ParseError(
            f"expected exactly one rule, found {len(program.rules)}"
        )
    return program.rules[0]


def parse_term(source: str) -> Term:
    """Parse a standalone expression (used mainly by tests)."""
    parser = _Parser(tokenize(source))
    return parser._parse_expression()
