"""Abstract syntax tree for NDlog programs.

The AST mirrors the language used throughout the ExSPAN paper:

* a :class:`Program` is a list of :class:`Rule` objects plus optional
  :class:`TableDecl` declarations and ground :class:`Fact` statements;
* each rule has a *head* :class:`Atom` and a body made of positive
  :class:`Atom` literals, :class:`Condition` boolean expressions and
  :class:`Assignment` statements (``Var = expression``);
* every predicate carries a *location specifier*: the attribute prefixed
  with ``@`` denoting the node where the tuple lives;
* predicates whose name starts with ``e`` are *event* predicates — they are
  never materialized and exist only transiently to trigger rules.

The AST is deliberately constructible both from the parser
(:mod:`repro.datalog.parser`) and programmatically — the ExSPAN provenance
rewriter (:mod:`repro.core.rewrite`) builds rules directly from these
classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import ValidationError
from .terms import AggregateSpec, Constant, Term, Variable

__all__ = [
    "Atom",
    "Condition",
    "Assignment",
    "BodyLiteral",
    "Rule",
    "Fact",
    "TableDecl",
    "Program",
    "is_event_predicate",
]


def is_event_predicate(name: str) -> bool:
    """Return True when *name* denotes an event (transient) predicate.

    By NDlog convention event predicate names start with a lower-case ``e``
    followed by an upper-case letter, e.g. ``ePacket`` or ``ePathCost``.
    """
    return len(name) >= 2 and name[0] == "e" and name[1].isupper()


@dataclass(frozen=True)
class Atom:
    """A predicate occurrence, e.g. ``pathCost(@S, D, C)``.

    Parameters
    ----------
    name:
        Relation (predicate) name.
    args:
        Argument terms, in order.
    location_index:
        Index into ``args`` of the location-specifier attribute (the one
        written with ``@``).  ``None`` only for predicates that are purely
        local helper relations; the runtime treats a missing specifier as
        position 0.
    """

    name: str
    args: Tuple[Term, ...]
    location_index: int = 0

    def __init__(self, name: str, args: Sequence[Term], location_index: int = 0):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "location_index", location_index)

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def location_term(self) -> Term:
        """The term in the location-specifier position."""
        return self.args[self.location_index]

    @property
    def is_event(self) -> bool:
        return is_event_predicate(self.name)

    def variables(self) -> Iterator[str]:
        for arg in self.args:
            yield from arg.variables()

    def aggregate(self) -> Optional[Tuple[int, AggregateSpec]]:
        """Return ``(position, spec)`` if the atom has an aggregate argument."""
        for index, arg in enumerate(self.args):
            if isinstance(arg, AggregateSpec):
                return index, arg
        return None

    def __str__(self) -> str:
        rendered = []
        for index, arg in enumerate(self.args):
            prefix = "@" if index == self.location_index else ""
            rendered.append(f"{prefix}{arg}")
        return f"{self.name}({', '.join(rendered)})"


@dataclass(frozen=True)
class Condition:
    """A boolean constraint in a rule body, e.g. ``C < 5`` or ``Z != Y``."""

    expression: Term

    def variables(self) -> Iterator[str]:
        yield from self.expression.variables()

    def __str__(self) -> str:
        return str(self.expression)


@dataclass(frozen=True)
class Assignment:
    """A body assignment binding a new variable, e.g. ``C = C1 + C2``."""

    variable: Variable
    expression: Term

    def variables(self) -> Iterator[str]:
        yield from self.expression.variables()

    def __str__(self) -> str:
        return f"{self.variable} = {self.expression}"


#: The three kinds of literal allowed in a rule body.
BodyLiteral = Any  # Atom | Condition | Assignment


@dataclass(frozen=True)
class Rule:
    """A single NDlog rule: ``label head :- body.``

    ``label`` is the rule identifier (``sp1``, ``r20`` ...); it feeds into
    RID computation for provenance, so every rule in a provenance-enabled
    program must carry a distinct label.
    """

    label: str
    head: Atom
    body: Tuple[BodyLiteral, ...]

    def __init__(self, label: str, head: Atom, body: Sequence[BodyLiteral]):
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))

    @property
    def body_atoms(self) -> Tuple[Atom, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    @property
    def body_conditions(self) -> Tuple[Condition, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Condition))

    @property
    def body_assignments(self) -> Tuple[Assignment, ...]:
        return tuple(lit for lit in self.body if isinstance(lit, Assignment))

    @property
    def is_aggregate_rule(self) -> bool:
        return self.head.aggregate() is not None

    def variables(self) -> Iterator[str]:
        yield from self.head.variables()
        for literal in self.body:
            yield from literal.variables()

    def validate(self) -> None:
        """Check rule safety.

        Every variable used in the head, in conditions and in assignment
        right-hand sides must be bound either by a body atom or by an earlier
        assignment.  Raises :class:`ValidationError` on violation.
        """
        bound: set[str] = set()
        for atom in self.body_atoms:
            bound.update(atom.variables())
        for literal in self.body:
            if isinstance(literal, Assignment):
                for name in literal.expression.variables():
                    if name not in bound:
                        raise ValidationError(
                            f"rule {self.label}: variable {name!r} used before "
                            f"binding in assignment {literal}"
                        )
                bound.add(literal.variable.name)
            elif isinstance(literal, Condition):
                for name in literal.variables():
                    if name not in bound:
                        raise ValidationError(
                            f"rule {self.label}: unbound variable {name!r} in "
                            f"condition {literal}"
                        )
        for name in self.head.variables():
            if name not in bound:
                raise ValidationError(
                    f"rule {self.label}: head variable {name!r} is not bound "
                    "by the rule body"
                )

    def __str__(self) -> str:
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.label} {self.head} :- {body}."


@dataclass(frozen=True, slots=True)
class Fact:
    """A ground fact such as ``link(@a, b, 3).``

    Facts are stored as plain value tuples; the location value is
    ``values[location_index]``.  Slotted: the engine creates one Fact per
    matched body row and per derived head, so instance-dict overhead shows
    up directly in fixpoint wall-clock.
    """

    name: str
    values: Tuple[Any, ...]
    location_index: int = 0

    def __init__(self, name: str, values: Sequence[Any], location_index: int = 0):
        object.__setattr__(self, "name", name)
        # isinstance (not an exact-type check) so interned table rows —
        # tuple subclasses with cached hashes — are kept as-is rather than
        # copied down to plain tuples on every Fact construction.
        object.__setattr__(
            self, "values", values if isinstance(values, tuple) else tuple(values)
        )
        object.__setattr__(self, "location_index", location_index)

    @property
    def arity(self) -> int:
        return len(self.values)

    @property
    def location(self) -> Any:
        return self.values[self.location_index]

    def __str__(self) -> str:
        rendered = []
        for index, value in enumerate(self.values):
            prefix = "@" if index == self.location_index else ""
            text = f'"{value}"' if isinstance(value, str) else str(value)
            rendered.append(f"{prefix}{text}")
        return f"{self.name}({', '.join(rendered)})"


@dataclass(frozen=True)
class TableDecl:
    """A ``materialize(name, arity, keys)`` style table declaration.

    Declarations are optional: relations referenced by rules are created on
    demand with all attributes forming the key.  Declaring a table lets the
    programmer fix the primary-key positions, which controls update (rather
    than multiset insert) semantics.
    """

    name: str
    arity: int
    key_positions: Tuple[int, ...] = ()

    def __init__(self, name: str, arity: int, key_positions: Sequence[int] = ()):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arity", arity)
        object.__setattr__(self, "key_positions", tuple(key_positions))


@dataclass
class Program:
    """A complete NDlog program: declarations, rules and base facts."""

    rules: List[Rule] = field(default_factory=list)
    facts: List[Fact] = field(default_factory=list)
    declarations: List[TableDecl] = field(default_factory=list)
    name: str = "program"

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_fact(self, fact: Fact) -> None:
        self.facts.append(fact)

    def add_declaration(self, declaration: TableDecl) -> None:
        self.declarations.append(declaration)

    def rule_by_label(self, label: str) -> Rule:
        for rule in self.rules:
            if rule.label == label:
                return rule
        raise KeyError(label)

    def relation_names(self) -> List[str]:
        """Return every relation name referenced by the program, sorted."""
        names = {decl.name for decl in self.declarations}
        names.update(fact.name for fact in self.facts)
        for rule in self.rules:
            names.add(rule.head.name)
            names.update(atom.name for atom in rule.body_atoms)
        return sorted(names)

    def predicates_derived(self) -> List[str]:
        """Return the names of predicates appearing in some rule head."""
        return sorted({rule.head.name for rule in self.rules})

    def base_predicates(self) -> List[str]:
        """Return relation names never derived by a rule (EDB relations)."""
        derived = set(self.predicates_derived())
        return [name for name in self.relation_names() if name not in derived]

    def validate(self) -> None:
        """Validate every rule and check label uniqueness."""
        seen: Dict[str, Rule] = {}
        for rule in self.rules:
            if rule.label in seen:
                raise ValidationError(f"duplicate rule label {rule.label!r}")
            seen[rule.label] = rule
            rule.validate()

    def extended(self, other: "Program", name: Optional[str] = None) -> "Program":
        """Return a new program combining this program with *other*."""
        return Program(
            rules=[*self.rules, *other.rules],
            facts=[*self.facts, *other.facts],
            declarations=[*self.declarations, *other.declarations],
            name=name or self.name,
        )

    def __str__(self) -> str:
        lines = [str(rule) for rule in self.rules]
        lines.extend(f"{fact}." for fact in self.facts)
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)
