"""NDlog: the declarative networking substrate used by ExSPAN.

The package provides the language front end (:mod:`repro.datalog.parser`,
:mod:`repro.datalog.ast`), builtin functions and aggregates, per-node storage
(:mod:`repro.datalog.catalog`), and the pipelined semi-naive evaluation
engine (:mod:`repro.datalog.engine`).
"""

from .aggregates import AggregateState
from .ast import (
    Assignment,
    Atom,
    Condition,
    Fact,
    Program,
    Rule,
    TableDecl,
    is_event_predicate,
)
from .catalog import Catalog, Table
from .engine import (
    DELETE,
    INSERT,
    PLANNERS,
    AnnotationPolicy,
    Delta,
    NDlogEngine,
    RuleFiring,
    default_planner,
    set_default_planner,
)
from .plan import (
    CostModel,
    GreedyOptimizer,
    IndexManager,
    PlanCompiler,
    construct_join_graph,
    explain_plan,
    normalize_rule,
)
from .errors import (
    DatalogError,
    EvaluationError,
    ParseError,
    SchemaError,
    UnknownFunctionError,
    UnknownRelationError,
    ValidationError,
)
from .functions import FunctionRegistry, default_registry, sha1_hex
from .localize import check_localized, is_localized, remote_head_rules
from .parser import parse_program, parse_rule, parse_term
from .runtime import StandaloneNetwork
from .terms import (
    AggregateSpec,
    BinaryOp,
    Constant,
    FunctionCall,
    Term,
    UnaryOp,
    Variable,
)

__all__ = [
    "AggregateState",
    "Assignment",
    "Atom",
    "Condition",
    "Fact",
    "Program",
    "Rule",
    "TableDecl",
    "is_event_predicate",
    "Catalog",
    "Table",
    "DELETE",
    "INSERT",
    "PLANNERS",
    "AnnotationPolicy",
    "Delta",
    "NDlogEngine",
    "RuleFiring",
    "default_planner",
    "set_default_planner",
    "CostModel",
    "GreedyOptimizer",
    "IndexManager",
    "PlanCompiler",
    "construct_join_graph",
    "explain_plan",
    "normalize_rule",
    "DatalogError",
    "EvaluationError",
    "ParseError",
    "SchemaError",
    "UnknownFunctionError",
    "UnknownRelationError",
    "ValidationError",
    "FunctionRegistry",
    "default_registry",
    "sha1_hex",
    "check_localized",
    "is_localized",
    "remote_head_rules",
    "parse_program",
    "parse_rule",
    "parse_term",
    "StandaloneNetwork",
    "AggregateSpec",
    "BinaryOp",
    "Constant",
    "FunctionCall",
    "Term",
    "UnaryOp",
    "Variable",
]
