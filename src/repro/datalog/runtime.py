"""Standalone multi-node runtime without the event simulator.

:class:`StandaloneNetwork` wires a set of :class:`NDlogEngine` instances
together with an in-memory message queue and zero latency.  It is the
easiest way to execute a distributed NDlog program when timing and byte
accounting do not matter — unit tests and the quickstart example use it;
the experiment harness uses the full simulator instead
(:mod:`repro.net.network` + :mod:`repro.core.api`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .ast import Fact, Program
from .engine import Delta, NDlogEngine
from .errors import EvaluationError
from .functions import FunctionRegistry

__all__ = ["StandaloneNetwork"]


class StandaloneNetwork:
    """Runs one engine per node and delivers remote deltas instantly."""

    def __init__(
        self,
        addresses: Iterable[Any],
        program: Optional[Program] = None,
        functions: Optional[FunctionRegistry] = None,
        annotation_policy_factory: Optional[Callable[[Any], Any]] = None,
        planner: Optional[str] = None,
        pipeline: Optional[str] = None,
    ):
        self.engines: Dict[Any, NDlogEngine] = {}
        self._pending: deque[Tuple[Any, Delta]] = deque()
        self.messages_sent = 0
        for address in addresses:
            policy = (
                annotation_policy_factory(address)
                if annotation_policy_factory is not None
                else None
            )
            engine = NDlogEngine(
                address,
                functions=functions.copy() if functions is not None else None,
                send=self._make_sender(address),
                annotation_policy=policy,
                planner=planner,
                pipeline=pipeline,
            )
            self.engines[address] = engine
        if program is not None:
            self.load_program(program)

    def _make_sender(self, source: Any) -> Callable[[Any, Delta], None]:
        def sender(destination: Any, delta: Delta) -> None:
            self.messages_sent += 1
            self._pending.append((destination, delta))

        return sender

    # ------------------------------------------------------------------ #
    # program and base facts
    # ------------------------------------------------------------------ #
    def load_program(self, program: Program) -> None:
        for engine in self.engines.values():
            engine.load_program(program)

    def engine(self, address: Any) -> NDlogEngine:
        return self.engines[address]

    def insert(self, fact: Fact) -> None:
        """Insert a base fact at the node named by its location specifier."""
        self._engine_for(fact).insert(fact)

    def delete(self, fact: Fact) -> None:
        self._engine_for(fact).delete(fact)

    def _engine_for(self, fact: Fact) -> NDlogEngine:
        try:
            return self.engines[fact.location]
        except KeyError:
            raise EvaluationError(
                f"fact {fact} addressed to unknown node {fact.location!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, max_rounds: int = 1_000_000) -> int:
        """Run all engines to a global fixpoint; returns messages delivered."""
        delivered = 0
        engines = self.engines
        pending = self._pending
        for _ in range(max_rounds):
            progressed = False
            for engine in engines.values():
                if engine._queue:
                    engine.run()
                    progressed = True
            while pending:
                destination, delta = pending.popleft()
                # Inlined engine.receive(): the pump delivers every remote
                # delta in the run, so the two method calls it saves add up.
                engine = engines[destination]
                engine.stats["deltas_received"] += 1
                engine._queue.append(delta)
                delivered += 1
                progressed = True
            if not progressed:
                return delivered
        raise EvaluationError("StandaloneNetwork.run did not reach a fixpoint")

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def table_rows(self, address: Any, name: str) -> List[Tuple[Any, ...]]:
        return self.engines[address].table_rows(name)

    def all_rows(self, name: str) -> List[Tuple[Any, ...]]:
        """Union of table *name* across every node (sorted for stable tests)."""
        rows: List[Tuple[Any, ...]] = []
        for engine in self.engines.values():
            rows.extend(engine.catalog.table(name).rows())
        return sorted(rows, key=repr)

    def planner_stats(self) -> Dict[str, int]:
        """Aggregated planner / evaluation counters across every engine."""
        from ..net.stats import aggregate_engine_stats

        return aggregate_engine_stats(engine.stats for engine in self.engines.values())
