"""Pretty-printer for compiled evaluation plans.

``explain`` renders a :class:`~repro.datalog.plan.compiler.CompiledDeltaPlan`
in the spirit of SQL ``EXPLAIN``: one line per join step showing the scan
target, the index (or full scan) it uses, where each constraint value comes
from, the optimizer's row estimate, and how many body literals are pushed
down after the step.  The engine exposes this through
:meth:`~repro.datalog.engine.NDlogEngine.explain`.
"""

from __future__ import annotations

from typing import Iterable, List

from .compiler import CompiledDeltaPlan, CompiledStep, LookupSpec

__all__ = ["explain_plan", "explain_plans"]


def _render_lookup(spec: LookupSpec) -> str:
    if spec.kind == "var":
        return f"[{spec.position}]={spec.source}"
    if spec.kind == "const":
        return f"[{spec.position}]={spec.source!r}"
    return f"[{spec.position}]=({spec.source})"


def _render_step(number: int, step: CompiledStep) -> List[str]:
    if step.index_positions:
        access = f"index{step.index_positions}"
        if step.key_covered:
            access += " (covers primary key)"
    else:
        access = "full scan"
    bindings = ", ".join(_render_lookup(spec) for spec in step.lookups)
    join_kind = "join" if step.connected else "cross product"
    lines = [
        f"  step {number}: {join_kind} {step.atom} via {access}"
        f" est_rows={step.estimated_rows:.2f}"
    ]
    if bindings:
        lines.append(f"          bind {bindings}")
    if step.literal_prefix:
        lines.append(
            f"          pushdown: first {step.literal_prefix} body literal(s)"
        )
    return lines


def explain_plan(plan: CompiledDeltaPlan) -> str:
    """Render one compiled delta plan as indented text."""
    rule = plan.rule
    lines = [
        f"rule {rule.label}: delta on {plan.trigger_atom.name}"
        f" (body position {plan.trigger_position})",
    ]
    if plan.initial_literal_prefix:
        lines.append(
            f"  pre-filter: first {plan.initial_literal_prefix} body literal(s)"
            " from the trigger binding"
        )
    if not plan.steps:
        lines.append("  no joins: finalize directly from the trigger tuple")
    for number, step in enumerate(plan.steps, start=1):
        lines.extend(_render_step(number, step))
    lines.append(
        f"  emit {rule.head} (estimated tuples scanned per delta:"
        f" {plan.estimated_scan:.2f})"
    )
    if plan.cardinality_snapshot:
        rendered = ", ".join(
            f"|{name}|={count}"
            for name, count in sorted(plan.cardinality_snapshot.items())
        )
        lines.append(f"  costed against local fragments: {rendered}")
    return "\n".join(lines)


def explain_plans(plans: Iterable[CompiledDeltaPlan]) -> str:
    """Render several plans separated by blank lines."""
    return "\n\n".join(explain_plan(plan) for plan in plans)
