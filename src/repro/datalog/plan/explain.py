"""Pretty-printer for compiled evaluation plans.

``explain`` renders a :class:`~repro.datalog.plan.compiler.CompiledDeltaPlan`
in the spirit of SQL ``EXPLAIN``: one line per join step showing the scan
target, the index (or full scan) it uses, where each constraint value comes
from, the optimizer's row estimate, and how many body literals are pushed
down after the step.  The engine exposes this through
:meth:`~repro.datalog.engine.NDlogEngine.explain`.

Under ``pipeline="columnar"`` each plan additionally shows its batch
execution strategy — the generated kernel sequence (selection vector,
build side, probe method) or the reason it falls back to per-delta
evaluation — plus, when the engine has already run, the observed average
batch width the kernels amortize their setup over.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional

from .compiler import CompiledDeltaPlan, CompiledStep, LookupSpec

__all__ = ["explain_plan", "explain_plans", "columnar_summary"]


def _render_lookup(spec: LookupSpec) -> str:
    if spec.kind == "var":
        return f"[{spec.position}]={spec.source}"
    if spec.kind == "const":
        return f"[{spec.position}]={spec.source!r}"
    return f"[{spec.position}]=({spec.source})"


def _render_step(number: int, step: CompiledStep) -> List[str]:
    if step.index_positions:
        access = f"index{step.index_positions}"
        if step.key_covered:
            access += " (covers primary key)"
    else:
        access = "full scan"
    bindings = ", ".join(_render_lookup(spec) for spec in step.lookups)
    join_kind = "join" if step.connected else "cross product"
    lines = [
        f"  step {number}: {join_kind} {step.atom} via {access}"
        f" est_rows={step.estimated_rows:.2f}"
    ]
    if bindings:
        lines.append(f"          bind {bindings}")
    if step.literal_prefix:
        lines.append(
            f"          pushdown: first {step.literal_prefix} body literal(s)"
        )
    return lines


def explain_plan(plan: CompiledDeltaPlan, *, pipeline: Optional[str] = None) -> str:
    """Render one compiled delta plan as indented text.

    With ``pipeline="columnar"`` the rendering appends the plan's batch
    execution strategy (see :func:`~repro.datalog.plan.columnar.describe_kernel`).
    """
    rule = plan.rule
    lines = [
        f"rule {rule.label}: delta on {plan.trigger_atom.name}"
        f" (body position {plan.trigger_position})",
    ]
    if plan.initial_literal_prefix:
        lines.append(
            f"  pre-filter: first {plan.initial_literal_prefix} body literal(s)"
            " from the trigger binding"
        )
    if not plan.steps:
        lines.append("  no joins: finalize directly from the trigger tuple")
    for number, step in enumerate(plan.steps, start=1):
        lines.extend(_render_step(number, step))
    lines.append(
        f"  emit {rule.head} (estimated tuples scanned per delta:"
        f" {plan.estimated_scan:.2f})"
    )
    if plan.cardinality_snapshot:
        rendered = ", ".join(
            f"|{name}|={count}"
            for name, count in sorted(plan.cardinality_snapshot.items())
        )
        lines.append(f"  costed against local fragments: {rendered}")
    if pipeline == "columnar":
        from .columnar import describe_kernel

        for description in describe_kernel(plan):
            lines.append(f"  columnar: {description}")
    return "\n".join(lines)


def explain_plans(
    plans: Iterable[CompiledDeltaPlan], *, pipeline: Optional[str] = None
) -> str:
    """Render several plans separated by blank lines."""
    return "\n\n".join(explain_plan(plan, pipeline=pipeline) for plan in plans)


def columnar_summary(counters: Mapping[str, Any]) -> str:
    """One-line summary of observed columnar batching (``EXPLAIN`` footer).

    *counters* is an engine's ``columnar_counters`` mapping; the estimated
    batch width is the average number of deltas each kernel invocation
    amortized its setup over so far (0 until the engine has processed a
    window).
    """
    batches = counters.get("kernel_batches", 0) + counters.get("generic_batches", 0)
    deltas = counters.get("deltas", 0)
    width = deltas / batches if batches else 0.0
    return (
        f"columnar batching: {counters.get('windows', 0)} window(s), "
        f"{counters.get('segments', 0)} segment(s), "
        f"{counters.get('kernel_batches', 0)} kernel batch(es), "
        f"{counters.get('generic_batches', 0)} generic batch(es), "
        f"estimated batch width {width:.1f} deltas"
    )
