"""Compiled per-(rule, delta-position) evaluation plans.

For every rule and every body-atom position a delta can arrive at, the
:class:`PlanCompiler` produces a :class:`CompiledDeltaPlan`:

* the remaining body atoms in the order chosen by the
  :class:`~repro.datalog.plan.optimizer.GreedyOptimizer`;
* per step, a precomputed *lookup specification* — which argument positions
  are constrained at runtime and where each constraint value comes from
  (a bound variable, a constant, or an expression over bound variables);
* per step, how many leading non-atom body literals (assignments and
  conditions) become evaluable once the step's variables are bound, so
  conditions prune join branches as early as possible (selection pushdown);
* the secondary indexes each step needs, registered eagerly with the
  :class:`~repro.datalog.plan.indexes.IndexManager`.

Every plan carries two execution forms:

* :meth:`CompiledDeltaPlan.execute` — the *batched-pipeline* form built
  from closure-compiled primitives (:mod:`.compiled_exec`): trigger
  binders, per-step matchers, precomputed index key tuples and compiled
  literal/head evaluators.  This is what the engine's batched delta
  pipeline runs.
* :meth:`CompiledDeltaPlan.execute_interpreted` — the original
  term-tree-walking interpreter, retained verbatim.  The legacy per-delta
  pipeline (``pipeline="delta"``) runs it, the equivalence tests compare
  the two, and the speedup benchmarks use it as the "before" measurement.

Equivalence with the naive path is a hard requirement (the engine's results
feed provenance VIDs and annotations), so both executions are careful to
mirror the naive semantics exactly:

* lookup constraints are built only from variables bound by the trigger
  atom and earlier *atoms* — never from assignment-derived variables, which
  the naive path also ignores during matching;
* pushed-down literals are evaluated with the same overwrite-in-body-order
  semantics as finalization, and any :class:`EvaluationError` defers the
  literal (and everything after it) back to finalization instead of
  pruning, so error behaviour is unchanged;
* matched body facts are handed to the engine in the naive order (trigger
  first, then remaining atoms in body order) regardless of the join order,
  keeping provenance annotation combination bit-identical;
* the ``index_lookups`` / ``full_scans`` / ``tuples_scanned`` counters are
  incremented identically by both forms (they are stored in benchmark
  artifacts the CI regression gate byte-compares).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..ast import Assignment, Atom, Fact, Rule
from ..catalog import freeze_value
from ..errors import EvaluationError
from .compiled_exec import (
    compile_head,
    compile_head_tuple,
    compile_literals,
    compile_step_matcher,
    compile_term,
    compile_trigger_binder,
    generate_finalizer,
    generate_one_step_executor,
    generate_zero_step_executor,
)
from .cost import CatalogStatistics, CostModel
from .indexes import IndexManager
from .join_graph import JoinGraph, construct_join_graph
from .normalize import LiteralInfo, NormalizedRule, normalize_rule
from .optimizer import GreedyOptimizer, JoinOrder

__all__ = ["LookupSpec", "CompiledStep", "CompiledDeltaPlan", "PlanCompiler"]

#: Plans with at least two join steps are checked for staleness every this
#: many executions (single-step plans cannot benefit from reordering).
STALENESS_CHECK_PERIOD = 64
#: A relation must grow or shrink by this factor ...
STALENESS_RATIO = 8.0
#: ... and by at least this many rows before a plan is considered stale.
STALENESS_MIN_DELTA = 32

#: Compiled key-source kinds (see _ExecStep).
_KEY_VAR = 0
_KEY_CONST = 1
_KEY_EXPR = 2

#: Process-wide memo of the join-order-independent compiled parts of a
#: plan, keyed by (id(rule), trigger position).  Values pin the rule object
#: so a recycled id can never alias a different rule; the cache is dropped
#: wholesale at the (generous) limit to stay bounded across long sweeps.
_STATIC_PARTS: Dict[Tuple[int, int], Tuple[Any, ...]] = {}
_STATIC_PARTS_LIMIT = 4096


@dataclass(frozen=True)
class LookupSpec:
    """How to compute the constraint value for one argument position."""

    position: int
    kind: str  # "var" | "const" | "expr"
    source: Any  # variable name | constant value | Term


@dataclass(frozen=True)
class CompiledStep:
    """One join step of a compiled plan."""

    atom: Atom
    body_position: int
    lookups: Tuple[LookupSpec, ...]
    #: canonical index position tuple ( () means full fragment scan ).
    index_positions: Tuple[int, ...]
    #: leading non-atom literals evaluable once this step has matched.
    literal_prefix: int
    #: optimizer metadata, used by explain() only.
    estimated_rows: float
    connected: bool
    key_covered: bool


class _ExecStep:
    """Runtime form of one join step: closures instead of term trees."""

    __slots__ = (
        "atom",
        "name",
        "location_index",
        "body_position",
        "matcher",
        "full_positions",
        "full_sources",
        "fallback_positions",
        "fallback_sources",
        "has_expr",
        "prefix_literals",
    )

    def __init__(self, step: CompiledStep, bound_vars, literals_c):
        atom = step.atom
        self.atom = atom
        self.name = atom.name
        self.location_index = atom.location_index
        self.body_position = step.body_position
        self.matcher = compile_step_matcher(atom, bound_vars)
        self.prefix_literals = literals_c[: step.literal_prefix]
        # Key sources in canonical (sorted-position) order — the order
        # Table.lookup derives from a constraints dict, and the order the
        # registered indexes hash their keys in.
        ordered = sorted(step.lookups, key=lambda spec: spec.position)
        sources = []
        fallback_positions = []
        fallback_sources = []
        has_expr = False
        for spec in ordered:
            if spec.kind == "var":
                source = (_KEY_VAR, spec.source)
                fallback_positions.append(spec.position)
                fallback_sources.append(source)
            elif spec.kind == "const":
                source = (_KEY_CONST, freeze_value(spec.source))
                fallback_positions.append(spec.position)
                fallback_sources.append(source)
            else:
                source = (_KEY_EXPR, compile_term(spec.source))
                has_expr = True
            sources.append(source)
        self.full_positions = tuple(spec.position for spec in ordered)
        self.full_sources = tuple(sources)
        self.fallback_positions = tuple(fallback_positions)
        self.fallback_sources = tuple(fallback_sources)
        self.has_expr = has_expr

    def build_key(self, sources, binding, functions) -> Tuple[Any, ...]:
        """Evaluate the key sources; EvaluationError propagates (expr only)."""
        key = []
        for kind, payload in sources:
            if kind == _KEY_VAR:
                key.append(freeze_value(binding[payload]))
            elif kind == _KEY_CONST:
                key.append(payload)
            else:
                key.append(freeze_value(payload(binding, functions)))
        return tuple(key)


@dataclass
class CompiledDeltaPlan:
    """A ready-to-run evaluation plan for one (rule, trigger position)."""

    rule: Rule
    trigger_position: int
    trigger_atom: Atom
    steps: Tuple[CompiledStep, ...]
    #: leading non-atom literals evaluable from the trigger binding alone.
    initial_literal_prefix: int
    #: non-trigger atom positions in body order (canonical fact ordering).
    body_order: Tuple[Tuple[int, Atom], ...]
    literals: Tuple[LiteralInfo, ...]
    #: relation -> local cardinality when the plan was compiled.
    cardinality_snapshot: Mapping[str, int]
    estimated_scan: float
    executions: int = 0

    def __post_init__(self) -> None:
        # Closure-compiled runtime forms (see module docstring).  These are
        # pure specializations: they never change results, only dispatch.
        #
        # Everything that does not depend on the chosen join order — the
        # trigger binder, literal/head closures and the two exec-generated
        # functions — is memoized per (rule, trigger position) in a
        # process-wide cache: every node of a network loads the same
        # program, and staleness recompiles only reorder join steps, so
        # regenerating (and re-`compile()`-ing) these per engine and per
        # recompile wasted a large share of network construction time.
        self.multi_step = len(self.steps) >= 2
        key = (id(self.rule), self.trigger_position)
        cached = _STATIC_PARTS.get(key)
        if cached is None or cached[0] is not self.rule:
            is_aggregate = self.rule.is_aggregate_rule
            head = None if is_aggregate else self.rule.head
            literals_c = compile_literals(self.literals)
            if not self.steps:
                fused = generate_zero_step_executor(
                    self.trigger_atom, self.literals, head, is_aggregate
                )
            elif len(self.steps) == 1:
                # A single-step plan has exactly one possible join order, so
                # its fused executor is as stable as the zero-step one.
                fused = generate_one_step_executor(
                    self.trigger_atom,
                    self.steps[0],
                    self.literals,
                    head,
                    is_aggregate,
                    self.initial_literal_prefix,
                )
            else:
                fused = None
            cached = (
                self.rule,  # pins the id against reuse after GC
                compile_trigger_binder(self.trigger_atom),
                literals_c,
                None if is_aggregate else compile_head(self.rule.head),
                None if is_aggregate else compile_head_tuple(self.rule.head),
                generate_finalizer(self.literals, head, is_aggregate),
                fused,
                is_aggregate,
            )
            if len(_STATIC_PARTS) >= _STATIC_PARTS_LIMIT:
                _STATIC_PARTS.clear()
            _STATIC_PARTS[key] = cached
        (
            _rule,
            self.trigger_binder,
            literals_c,
            self._head_fns,
            self._head_tuple,
            self._finalize_c,
            self.fused_exec,
            self._is_aggregate,
        ) = cached
        self._literals_c = literals_c
        self._initial_prefix_literals = literals_c[: self.initial_literal_prefix]
        bound = {
            arg.name
            for arg in self.trigger_atom.args
            if getattr(arg, "is_wildcard", None) is False
        }
        exec_steps = []
        for step in self.steps:
            exec_steps.append(_ExecStep(step, frozenset(bound), literals_c))
            bound.update(
                arg.name
                for arg in step.atom.args
                if getattr(arg, "is_wildcard", None) is False
            )
        self._exec_steps = tuple(exec_steps)

    # ------------------------------------------------------------------ #
    # staleness
    # ------------------------------------------------------------------ #
    def should_check_staleness(self) -> bool:
        return (
            len(self.steps) >= 2
            and self.executions % STALENESS_CHECK_PERIOD == 0
        )

    def is_stale(self, statistics: CatalogStatistics) -> bool:
        """True when join-relevant cardinalities drifted far from compile time.

        Reordering can only help plans with two or more steps, so
        single-step plans never go stale.
        """
        if len(self.steps) < 2:
            return False
        for name, old in self.cardinality_snapshot.items():
            new = statistics.cardinality(name)
            low, high = min(old, new), max(old, new)
            if high - low >= STALENESS_MIN_DELTA and high >= STALENESS_RATIO * max(low, 1):
                return True
        return False

    # ------------------------------------------------------------------ #
    # batched-pipeline execution (closure-compiled fast path)
    # ------------------------------------------------------------------ #
    def execute(self, engine, delta, binding: Dict[str, Any]) -> None:
        """Run the compiled plan for *delta* given the trigger *binding*."""
        self.executions += 1
        if not self._exec_steps:
            finalize = self._finalize_c
            if finalize is not None:
                finalize(self, engine, binding, (delta.fact,), delta)
            else:
                self._finalize(engine, binding, (delta.fact,), delta)
            return
        if self._initial_prefix_literals and not self._apply_prefix(
            engine, binding, self._initial_prefix_literals
        ):
            return
        self._join_compiled(engine, delta, binding, 0, {})

    def _join_compiled(
        self,
        engine,
        delta,
        binding: Dict[str, Any],
        step_index: int,
        facts: Dict[int, Fact],
    ) -> None:
        step = self._exec_steps[step_index]
        table = engine.catalog.table(step.name)
        stats = engine.stats
        functions = engine.functions
        positions = step.full_positions
        key = None
        if positions:
            if step.has_expr:
                try:
                    key = step.build_key(step.full_sources, binding, functions)
                except EvaluationError:
                    # Same fallback as the interpreter: drop every
                    # expression constraint, keep the var/const ones, and
                    # let the per-row match filter (identically to naive).
                    positions = step.fallback_positions
                    if positions:
                        key = step.build_key(
                            step.fallback_sources, binding, functions
                        )
            else:
                key = step.build_key(step.full_sources, binding, functions)
        if positions:
            stats["index_lookups"] += 1
            bucket = table.probe(positions, key)
            if bucket:
                rows = bucket
                scanned = len(bucket)
            else:
                rows = ()
                scanned = 0
        else:
            stats["full_scans"] += 1
            rows = table.rows_list()
            scanned = len(rows)
        matcher = step.matcher
        prefix = step.prefix_literals
        last = step_index + 1 == len(self._exec_steps)
        finalize = self._finalize_c
        for row in rows:
            if matcher is not None:
                extended = matcher(row, binding)
            else:
                extended = engine._match_atom(step.atom, row, binding)
            if extended is None:
                continue
            if prefix and not self._apply_prefix(engine, extended, prefix):
                continue
            facts[step.body_position] = Fact(step.name, row, step.location_index)
            if last:
                body_facts = (delta.fact, *(facts[p] for p, _ in self.body_order))
                if finalize is not None:
                    finalize(self, engine, extended, body_facts, delta)
                else:
                    self._finalize(engine, extended, body_facts, delta)
            else:
                self._join_compiled(engine, delta, extended, step_index + 1, facts)
        stats["tuples_scanned"] += scanned

    def _finalize(self, engine, binding, body_facts, delta) -> None:
        """Compiled finalization: literals, then aggregate or head emission.

        Mirrors ``NDlogEngine._finalize_binding`` exactly, including the
        error-message wrapping.  Unlike the interpreter it takes *ownership*
        of ``binding`` instead of copying it into a fresh environment: every
        caller on the compiled path hands over a dict built for exactly one
        finalization (the trigger binder's, or a step matcher's extension),
        so mutating it in place is unobservable.
        """
        env = binding
        functions = engine.functions
        for is_assign, name, fn, literal in self._literals_c:
            if is_assign:
                try:
                    env[name] = fn(env, functions)
                except EvaluationError as exc:
                    raise EvaluationError(
                        f"rule {self.rule.label}: failed to evaluate {literal}: {exc}"
                    ) from exc
            else:
                try:
                    passed = fn(env, functions)
                except EvaluationError as exc:
                    raise EvaluationError(
                        f"rule {self.rule.label}: failed to evaluate {literal}: {exc}"
                    ) from exc
                if not passed:
                    return
        if self._is_aggregate:
            engine._apply_aggregate(self.rule, env, body_facts, delta)
            return
        head = self.rule.head
        head_tuple = self._head_tuple
        if head_tuple is not None:
            head_values: Any = head_tuple(env)
        else:
            head_values = [fn(env, functions) for fn in self._head_fns]
        head_fact = Fact(head.name, head_values, head.location_index)
        engine._emit(self.rule, delta.action, head_fact, env, body_facts, delta)

    def _finalize_replay(self, engine, body_facts, delta) -> None:
        """Re-run one finalization through the interpreter.

        The generated finalizer (:func:`.compiled_exec.generate_finalizer`)
        delegates here on *any* exception: evaluation is pure, so replaying
        from a freshly reconstructed binding reproduces the interpreter's
        exact behaviour — including its wrapped error messages — without
        the generated code carrying per-literal error handling.  The
        binding is rebuilt from the already-matched body facts (the
        generated code may have mutated its env before failing).
        """
        binding = engine._match_atom(self.trigger_atom, body_facts[0].values, {})
        matched = [(self.trigger_atom, body_facts[0])]
        for (_, atom), fact in zip(self.body_order, body_facts[1:]):
            if binding is None:
                break
            binding = engine._match_atom(atom, fact.values, binding)
            matched.append((atom, fact))
        if binding is None:  # pragma: no cover - facts matched moments ago
            raise EvaluationError(
                f"rule {self.rule.label}: internal error re-matching body facts"
            )
        engine._finalize_binding(self.rule, binding, matched, delta)

    @staticmethod
    def _apply_prefix(engine, binding, literals) -> bool:
        """Compiled pushdown prefix; same deferral semantics as interpreted."""
        env = dict(binding)
        functions = engine.functions
        for is_assign, name, fn, _literal in literals:
            if is_assign:
                try:
                    env[name] = fn(env, functions)
                except EvaluationError:
                    return True
            else:
                try:
                    if not fn(env, functions):
                        return False
                except EvaluationError:
                    return True
        return True

    # ------------------------------------------------------------------ #
    # interpreted execution (legacy pipeline and equivalence reference)
    # ------------------------------------------------------------------ #
    def execute_interpreted(self, engine, delta, binding: Dict[str, Any]) -> None:
        """Run the plan by walking term trees (the pre-batching code path)."""
        self.executions += 1
        if not self.steps:
            matched = [(self.trigger_atom, delta.fact)]
            engine._finalize_binding(self.rule, binding, matched, delta)
            return
        if self.initial_literal_prefix and not self._apply_literal_prefix(
            engine, binding, self.initial_literal_prefix
        ):
            return
        facts: Dict[int, Fact] = {}
        self._join(engine, delta, binding, 0, facts)

    def _join(
        self,
        engine,
        delta,
        binding: Dict[str, Any],
        step_index: int,
        facts: Dict[int, Fact],
    ) -> None:
        if step_index == len(self.steps):
            matched = [(self.trigger_atom, delta.fact)]
            for position, atom in self.body_order:
                matched.append((atom, facts[position]))
            engine._finalize_binding(self.rule, binding, matched, delta)
            return
        step = self.steps[step_index]
        constraints = self._constraints(engine, step, binding)
        table = engine.catalog.table(step.atom.name)
        stats = engine.stats
        if constraints:
            stats["index_lookups"] += 1
        else:
            stats["full_scans"] += 1
        scanned = 0
        for row in table.lookup(constraints):
            scanned += 1
            extended = engine._match_atom(step.atom, row, binding)
            if extended is None:
                continue
            if step.literal_prefix and not self._apply_literal_prefix(
                engine, extended, step.literal_prefix
            ):
                continue
            facts[step.body_position] = Fact(
                step.atom.name, row, step.atom.location_index
            )
            self._join(engine, delta, extended, step_index + 1, facts)
        stats["tuples_scanned"] += scanned

    def _constraints(
        self, engine, step: CompiledStep, binding: Dict[str, Any]
    ) -> Dict[int, Any]:
        """Build the {position: value} lookup constraints for *step*.

        If any expression constraint fails to evaluate, every expression
        constraint is dropped and only the variable/constant ones remain:
        that fallback position set is also pre-registered by the compiler,
        so the lookup never builds an untracked index inside the evaluation
        loop.  Dropping constraints is always safe — the surviving rows are
        filtered by ``_match_atom`` exactly as the naive path would.
        """
        constraints: Dict[int, Any] = {}
        expr_specs = []
        for spec in step.lookups:
            if spec.kind == "var":
                constraints[spec.position] = binding[spec.source]
            elif spec.kind == "const":
                constraints[spec.position] = spec.source
            else:
                expr_specs.append(spec)
        for spec in expr_specs:
            try:
                value = spec.source.evaluate(binding, engine.functions)
            except EvaluationError:
                # The naive path evaluates the expression per row inside
                # _match_atom and rejects rows on EvaluationError; fall back
                # to the var/const index so it does the same here.
                for dropped in expr_specs:
                    constraints.pop(dropped.position, None)
                break
            constraints[spec.position] = value
        return constraints

    def _apply_literal_prefix(
        self, engine, binding: Mapping[str, Any], count: int
    ) -> bool:
        """Evaluate the first *count* non-atom literals; False prunes.

        Mirrors finalization: literals run in body order against an
        environment seeded with the atom bindings, assignments overwrite.
        An EvaluationError stops pushdown (the literal runs again at
        finalization, which owns error reporting), it never prunes.

        Prefixes are cumulative — step k re-evaluates literals [0, count)
        rather than slicing from the previous step's count.  That repeats
        some assignment evaluations on bodies with three or more atoms, but
        it keeps the environment construction textually identical to
        finalization's (the equivalence-critical property); the repeated
        work is bounded by the prefix length, which is zero unless the
        prefix contains a pruning condition.
        """
        env = dict(binding)
        functions = engine.functions
        for info in self.literals[:count]:
            literal = info.literal
            if isinstance(literal, Assignment):
                try:
                    env[literal.variable.name] = literal.expression.evaluate(
                        env, functions
                    )
                except EvaluationError:
                    return True
            else:
                try:
                    if not literal.expression.evaluate(env, functions):
                        return False
                except EvaluationError:
                    return True
        return True


class PlanCompiler:
    """Compiles (rule, delta position) pairs into executable plans."""

    def __init__(
        self,
        statistics: CatalogStatistics,
        index_manager: IndexManager,
        optimizer: Optional[GreedyOptimizer] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self.statistics = statistics
        self.index_manager = index_manager
        self.cost_model = (
            cost_model if cost_model is not None else CostModel(statistics)
        )
        self.optimizer = (
            optimizer if optimizer is not None else GreedyOptimizer(self.cost_model)
        )
        self._normalized: Dict[str, Tuple[NormalizedRule, JoinGraph]] = {}

    def _analysis(self, rule: Rule) -> Tuple[NormalizedRule, JoinGraph]:
        cached = self._normalized.get(rule.label)
        if cached is not None and cached[0].rule is rule:
            return cached
        normalized = normalize_rule(rule)
        graph = construct_join_graph(normalized)
        self._normalized[rule.label] = (normalized, graph)
        return normalized, graph

    def compile(self, rule: Rule, trigger_position: int) -> CompiledDeltaPlan:
        """Compile the delta plan for *rule* triggered at *trigger_position*."""
        normalized, graph = self._analysis(rule)
        trigger = normalized.signature(trigger_position)
        order: JoinOrder = self.optimizer.order(normalized, graph, trigger_position)

        bound = set(trigger.variables)
        initial_prefix = self._pruning_prefix(normalized, frozenset(bound))
        steps: List[CompiledStep] = []
        for index, ordered in enumerate(order.steps):
            signature = ordered.signature
            estimate = ordered.estimate
            lookups = self._lookup_specs(signature, estimate.bound_positions, bound)
            index_positions = self.index_manager.require(
                signature.name, estimate.bound_positions
            )
            # Pre-register the fallback index used when an expression
            # constraint fails to evaluate at runtime (see _constraints), so
            # that path never lazily builds an untracked index mid-delta.
            fallback = tuple(
                spec.position for spec in lookups if spec.kind != "expr"
            )
            if fallback and len(fallback) < len(lookups):
                self.index_manager.require(signature.name, fallback)
            bound.update(signature.variables)
            is_last = index == len(order.steps) - 1
            # Pushdown after the last step buys nothing: finalization runs
            # immediately afterwards and evaluates every literal anyway.
            prefix = (
                0 if is_last else self._pruning_prefix(normalized, frozenset(bound))
            )
            steps.append(
                CompiledStep(
                    atom=signature.atom,
                    body_position=signature.position,
                    lookups=lookups,
                    index_positions=index_positions,
                    literal_prefix=prefix,
                    estimated_rows=estimate.rows,
                    connected=ordered.connected,
                    key_covered=estimate.key_covered,
                )
            )
        body_order = tuple(
            (signature.position, signature.atom)
            for signature in normalized.atoms
            if signature.position != trigger_position
        )
        snapshot = self.statistics.snapshot(
            signature.name for signature in normalized.atoms
        )
        return CompiledDeltaPlan(
            rule=rule,
            trigger_position=trigger_position,
            trigger_atom=trigger.atom,
            steps=tuple(steps),
            initial_literal_prefix=initial_prefix if steps else 0,
            body_order=body_order,
            literals=normalized.literals,
            cardinality_snapshot=snapshot,
            estimated_scan=order.estimated_scan,
        )

    @staticmethod
    def _pruning_prefix(normalized: NormalizedRule, bound: frozenset) -> int:
        """Evaluable literal prefix, but only when it can actually prune.

        A prefix made solely of assignments never rejects a binding, and
        finalization re-evaluates every literal anyway — so pushing it down
        would be pure re-computation.  Only prefixes containing at least one
        condition are worth evaluating early.
        """
        count = normalized.evaluable_literal_prefix(bound)
        if any(not info.is_assignment for info in normalized.literals[:count]):
            return count
        return 0

    def _lookup_specs(
        self,
        signature,
        bound_positions: Tuple[int, ...],
        bound_vars: set,
    ) -> Tuple[LookupSpec, ...]:
        position_to_var: Dict[int, str] = {}
        for name, positions in signature.var_positions.items():
            for position in positions:
                position_to_var[position] = name
        specs: List[LookupSpec] = []
        for position in bound_positions:
            if position in signature.const_positions:
                specs.append(
                    LookupSpec(
                        position=position,
                        kind="const",
                        source=signature.const_positions[position],
                    )
                )
            elif position in position_to_var and position_to_var[position] in bound_vars:
                specs.append(
                    LookupSpec(
                        position=position, kind="var", source=position_to_var[position]
                    )
                )
            else:
                specs.append(
                    LookupSpec(
                        position=position,
                        kind="expr",
                        source=signature.atom.args[position],
                    )
                )
        return tuple(specs)
