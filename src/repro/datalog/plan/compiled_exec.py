"""Closure-compiled execution primitives for the batched delta pipeline.

The interpreted evaluation path walks :class:`~repro.datalog.terms.Term`
trees and re-classifies every atom argument (variable? constant?
expression?) on every delta.  That generic dispatch dominates the per-node
fixpoint cost once join *order* is already optimal, so this module compiles
each (rule, trigger position) plan down to plain Python closures once, at
plan-compile time:

* :func:`compile_term` — one closure per term, mirroring ``Term.evaluate``
  exactly (same values, same :class:`EvaluationError` messages, same
  operator semantics including NDlog string ``+`` coercion);
* :func:`compile_trigger_binder` — a matcher turning a delta's value tuple
  into the trigger binding without per-argument ``isinstance`` dispatch;
* :func:`compile_step_matcher` — the per-row unification check of one join
  step, specialized against the statically-known set of bound variables;
* :func:`compile_literals` / :func:`compile_head` — the rule's non-atom
  literal sequence and head-argument evaluators.

Equivalence with the interpreted path is the hard requirement (results feed
provenance VIDs, annotations and the committed benchmark baselines), so
every compiled form either reproduces the interpreted semantics exactly or
declines to compile (returns ``None``) and the caller falls back to the
interpreted code.  Expression arguments inside atoms are the one declined
case: the interpreter evaluates them under the partially-extended binding
of the *same* atom, which a static specialization cannot mirror safely.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ast import Assignment, Atom
from ..errors import EvaluationError
from ..terms import (
    AggregateSpec,
    BinaryOp,
    Constant,
    FunctionCall,
    Term,
    UnaryOp,
    Variable,
    _BINARY_EVALUATORS,
    _as_text,
)

__all__ = [
    "CompiledTerm",
    "compile_term",
    "compile_trigger_binder",
    "compile_step_matcher",
    "compile_literals",
    "compile_head",
    "compile_head_tuple",
    "generate_finalizer",
    "generate_zero_step_executor",
    "generate_one_step_executor",
]

#: A compiled term: ``fn(env, functions) -> value`` (raises EvaluationError).
CompiledTerm = Callable[[Dict[str, Any], Any], Any]


# ---------------------------------------------------------------------- #
# term compilation
# ---------------------------------------------------------------------- #
def compile_term(term: Term) -> CompiledTerm:
    """Compile *term* into a closure equivalent to ``term.evaluate``."""
    if isinstance(term, Variable):
        name = term.name

        def run_variable(env, functions, _name=name):
            try:
                return env[_name]
            except KeyError:
                raise EvaluationError(f"unbound variable {_name!r}") from None

        return run_variable

    if isinstance(term, Constant):
        value = term.value
        return lambda env, functions, _v=value: _v

    if isinstance(term, UnaryOp):
        op = term.op
        operand = compile_term(term.operand)
        if op == "-":
            return lambda env, functions: -operand(env, functions)
        if op == "!":
            return lambda env, functions: not operand(env, functions)

        def run_bad_unary(env, functions, _op=op, _operand=operand):
            # Mirror UnaryOp.evaluate: the operand is evaluated before the
            # unknown operator is reported.
            _operand(env, functions)
            raise EvaluationError(f"unknown unary operator {_op!r}")

        return run_bad_unary

    if isinstance(term, BinaryOp):
        return _compile_binary(term)

    if isinstance(term, FunctionCall):
        return _compile_call(term)

    if isinstance(term, AggregateSpec):

        def run_aggregate(env, functions):
            raise EvaluationError(
                "aggregate specifications cannot be evaluated as scalar terms"
            )

        return run_aggregate

    # Unknown Term subclass: defer to its own evaluate (still correct).
    return lambda env, functions, _t=term: _t.evaluate(env, functions)


def _plain_variable(term: Term) -> bool:
    return isinstance(term, Variable) and not term.is_wildcard


def _simple_getter(term: Term) -> Optional[Callable[[Dict[str, Any]], Any]]:
    """A C-speed value getter for a plain variable or constant, else None.

    Variable getters raise ``KeyError`` on unbound names; callers translate
    that to the interpreter's ``EvaluationError`` with the same message.
    """
    if _plain_variable(term):
        return itemgetter(term.name)
    if isinstance(term, Constant):
        value = term.value
        return lambda env, _v=value: _v
    return None


def _compile_call(term: FunctionCall) -> CompiledTerm:
    name = term.name

    # Specialization: a (possibly empty) constant prefix followed by plain
    # variables — the exact shape of the rewrite layer's VID assignments,
    # ``f_sha1("link", S, D, C)``.  One itemgetter call fetches every
    # argument at C speed instead of one closure call per argument.
    split = len(term.args)
    for index, arg in enumerate(term.args):
        if not isinstance(arg, Constant):
            split = index
            break
    tail = term.args[split:]
    if tail and all(_plain_variable(arg) for arg in tail):
        consts = tuple(arg.value for arg in term.args[:split])
        names = tuple(arg.name for arg in tail)
        getter = itemgetter(*names)
        single = len(names) == 1

        def run_fast_call(
            env, functions, _name=name, _consts=consts, _get=getter, _single=single
        ):
            try:
                fetched = _get(env)
            except KeyError as missing:
                raise EvaluationError(
                    f"unbound variable {missing.args[0]!r}"
                ) from None
            if _single:
                values = [*_consts, fetched]
            else:
                values = [*_consts, *fetched]
            target = functions._functions.get(_name)
            if target is None:
                return functions.call(_name, values)
            return target(values)

        return run_fast_call

    arg_fns = tuple(compile_term(arg) for arg in term.args)

    def run_call(env, functions, _name=name, _args=arg_fns):
        # Resolve the builtin directly from the registry dict; the `call`
        # wrapper is kept for the unknown-function error path so the raised
        # exception is identical.
        target = functions._functions.get(_name)
        values = [fn(env, functions) for fn in _args]
        if target is None:
            return functions.call(_name, values)
        return target(values)

    return run_call


def _compile_binary(term: BinaryOp) -> CompiledTerm:
    op = term.op
    evaluator = _BINARY_EVALUATORS.get(op)
    if evaluator is None:

        def run_bad(env, functions, _op=op):
            raise EvaluationError(f"unknown binary operator {_op!r}")

        return run_bad

    # Specialization: both operands are plain variables or constants (the
    # common comparison / arithmetic shape) — skip the operand closures.
    left_get = _simple_getter(term.left)
    right_get = _simple_getter(term.right)
    if left_get is not None and right_get is not None:
        if op == "+":

            def run_fast_plus(env, functions, _l=left_get, _r=right_get):
                try:
                    lv = _l(env)
                    rv = _r(env)
                except KeyError as missing:
                    raise EvaluationError(
                        f"unbound variable {missing.args[0]!r}"
                    ) from None
                if isinstance(lv, str) or isinstance(rv, str):
                    return _as_text(lv) + _as_text(rv)
                try:
                    return lv + rv
                except TypeError as exc:
                    raise EvaluationError(
                        f"type error evaluating {lv!r} + {rv!r}: {exc}"
                    ) from exc

            return run_fast_plus

        def run_fast_binary(
            env, functions, _l=left_get, _r=right_get, _op=op, _ev=evaluator
        ):
            try:
                lv = _l(env)
                rv = _r(env)
            except KeyError as missing:
                raise EvaluationError(
                    f"unbound variable {missing.args[0]!r}"
                ) from None
            try:
                return _ev(lv, rv)
            except TypeError as exc:
                raise EvaluationError(
                    f"type error evaluating {lv!r} {_op} {rv!r}: {exc}"
                ) from exc

        return run_fast_binary

    left = compile_term(term.left)
    right = compile_term(term.right)

    if op == "+":

        def run_plus(env, functions, _l=left, _r=right):
            lv = _l(env, functions)
            rv = _r(env, functions)
            if isinstance(lv, str) or isinstance(rv, str):
                return _as_text(lv) + _as_text(rv)
            try:
                return lv + rv
            except TypeError as exc:
                raise EvaluationError(
                    f"type error evaluating {lv!r} + {rv!r}: {exc}"
                ) from exc

        return run_plus

    def run_binary(env, functions, _l=left, _r=right, _op=op, _ev=evaluator):
        lv = _l(env, functions)
        rv = _r(env, functions)
        try:
            return _ev(lv, rv)
        except TypeError as exc:
            raise EvaluationError(
                f"type error evaluating {lv!r} {_op} {rv!r}: {exc}"
            ) from exc

    return run_binary


# ---------------------------------------------------------------------- #
# atom argument classification (shared by binder and step matcher)
# ---------------------------------------------------------------------- #
def _classify_args(
    atom: Atom, bound_vars: frozenset
) -> Optional[
    Tuple[
        List[Tuple[int, Any]],  # constant checks: (position, value)
        List[Tuple[int, str]],  # checks against the incoming binding
        List[Tuple[int, int]],  # within-row repeats: (position, first position)
        List[Tuple[int, str]],  # fresh bindings: (position, variable name)
    ]
]:
    """Statically classify *atom*'s arguments; ``None`` when not compilable.

    ``bound_vars`` is the set of variables guaranteed bound before this atom
    is matched (empty for trigger atoms).  Expression arguments make the
    atom non-compilable: the interpreter evaluates them under the partially
    extended binding of the same atom, which only the generic path mirrors.
    """
    const_checks: List[Tuple[int, Any]] = []
    bound_checks: List[Tuple[int, str]] = []
    repeat_checks: List[Tuple[int, int]] = []
    fresh_binds: List[Tuple[int, str]] = []
    first_seen: Dict[str, int] = {}
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Variable):
            if arg.is_wildcard:
                continue
            name = arg.name
            if name in bound_vars:
                bound_checks.append((position, name))
            elif name in first_seen:
                repeat_checks.append((position, first_seen[name]))
            else:
                first_seen[name] = position
                fresh_binds.append((position, name))
        elif isinstance(arg, Constant):
            const_checks.append((position, arg.value))
        else:
            return None
    return const_checks, bound_checks, repeat_checks, fresh_binds


# ---------------------------------------------------------------------- #
# trigger binder
# ---------------------------------------------------------------------- #
def compile_trigger_binder(
    atom: Atom,
) -> Optional[Callable[[Tuple[Any, ...]], Optional[Dict[str, Any]]]]:
    """Compile the trigger-atom match ``values -> binding`` (or ``None``).

    Returns ``None`` when the atom holds expression arguments, in which case
    the engine falls back to its generic ``_match_atom``.
    """
    classified = _classify_args(atom, frozenset())
    if classified is None:
        return None
    const_checks, _bound, repeat_checks, fresh_binds = classified
    arity = len(atom.args)

    if not const_checks and not repeat_checks and len(fresh_binds) == arity:
        # Fast path: every argument is a distinct plain variable.
        names = tuple(name for _, name in fresh_binds)

        def bind_all(values, _arity=arity, _names=names):
            if len(values) != _arity:
                return None
            return dict(zip(_names, values))

        return bind_all

    consts = tuple(const_checks)
    repeats = tuple(repeat_checks)
    binds = tuple(fresh_binds)

    def bind(values, _arity=arity, _consts=consts, _repeats=repeats, _binds=binds):
        if len(values) != _arity:
            return None
        for position, expected in _consts:
            if expected != values[position]:
                return None
        for position, first in _repeats:
            if values[first] != values[position]:
                return None
        return {name: values[position] for position, name in _binds}

    return bind


# ---------------------------------------------------------------------- #
# join-step matcher
# ---------------------------------------------------------------------- #
def compile_step_matcher(
    atom: Atom, bound_vars: frozenset
) -> Optional[
    Callable[[Tuple[Any, ...], Dict[str, Any]], Optional[Dict[str, Any]]]
]:
    """Compile the per-row match of one join step.

    ``bound_vars`` must hold exactly the variables bound by the trigger atom
    and every earlier step (assignment-derived variables are never in the
    binding on this path, matching the interpreter).  Returns ``None`` for
    atoms with expression arguments.
    """
    classified = _classify_args(atom, bound_vars)
    if classified is None:
        return None
    const_checks, bound_checks, repeat_checks, fresh_binds = classified
    arity = len(atom.args)
    consts = tuple(const_checks)
    bounds = tuple(bound_checks)
    repeats = tuple(repeat_checks)
    binds = tuple(fresh_binds)

    def match(
        row,
        binding,
        _arity=arity,
        _consts=consts,
        _bounds=bounds,
        _repeats=repeats,
        _binds=binds,
    ):
        if len(row) != _arity:
            return None
        for position, expected in _consts:
            if expected != row[position]:
                return None
        for position, name in _bounds:
            if binding[name] != row[position]:
                return None
        for position, first in _repeats:
            if row[first] != row[position]:
                return None
        extended = dict(binding)
        for position, name in _binds:
            extended[name] = row[position]
        return extended

    return match


# ---------------------------------------------------------------------- #
# literal sequence and head
# ---------------------------------------------------------------------- #
def compile_literals(
    literal_infos,
) -> Tuple[Tuple[bool, Optional[str], CompiledTerm, Any], ...]:
    """Compile the rule's non-atom literals (in body order).

    Each entry is ``(is_assignment, bound_name, fn, literal)`` where
    ``literal`` is the source AST node (kept for error messages, which must
    match the interpreter's byte for byte).
    """
    compiled = []
    for info in literal_infos:
        literal = info.literal
        if isinstance(literal, Assignment):
            compiled.append(
                (
                    True,
                    literal.variable.name,
                    compile_term(literal.expression),
                    literal,
                )
            )
        else:
            compiled.append((False, None, compile_term(literal.expression), literal))
    return tuple(compiled)


def compile_head(atom: Atom) -> Tuple[CompiledTerm, ...]:
    """Compile the head atom's argument evaluators (non-aggregate rules)."""
    return tuple(compile_term(arg) for arg in atom.args)


def compile_head_tuple(
    atom: Atom,
) -> Optional[Callable[[Dict[str, Any]], Tuple[Any, ...]]]:
    """All-variable head fast path: one itemgetter builds the value tuple.

    Returns ``None`` unless every head argument is a plain variable (the
    shape of all of the provenance rewrite's bookkeeping rules); callers
    fall back to :func:`compile_head` otherwise.
    """
    if not atom.args or not all(_plain_variable(arg) for arg in atom.args):
        return None
    names = tuple(arg.name for arg in atom.args)
    getter = itemgetter(*names)
    if len(names) == 1:

        def head_single(env, _get=getter):
            try:
                return (_get(env),)
            except KeyError as missing:
                raise EvaluationError(
                    f"unbound variable {missing.args[0]!r}"
                ) from None

        return head_single

    def head_tuple(env, _get=getter):
        try:
            return _get(env)
        except KeyError as missing:
            raise EvaluationError(f"unbound variable {missing.args[0]!r}") from None

    return head_tuple


# ---------------------------------------------------------------------- #
# source-level finalizer generation
# ---------------------------------------------------------------------- #
def _plus(left: Any, right: Any) -> Any:
    """NDlog ``+``: string concatenation wins when either side is a string."""
    if isinstance(left, str) or isinstance(right, str):
        return _as_text(left) + _as_text(right)
    return left + right


#: Binary operators whose Python spelling matches the interpreter's
#: evaluator lambda exactly (``+`` needs the string-coercion helper and the
#: boolean operators need explicit bool()).
_DIRECT_BINARY_OPS = frozenset(
    ("-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=")
)


def _env_resolver(name: str) -> str:
    return f"env[{name!r}]"


def _term_source(
    term: Term, resolve: Callable[[str], Optional[str]] = _env_resolver
) -> Optional[str]:
    """Python expression source for *term*, or ``None`` when not supported.

    ``resolve`` maps a variable name to its source expression (an ``env``
    subscript by default; the zero-step executor resolves trigger variables
    to positional ``values[i]`` reads and assigned variables to generated
    locals).  The generated code runs inside a catch-all try whose handler
    replays the whole finalization through the interpreter, so raw
    ``KeyError`` / ``TypeError`` raised by this source never leak: the
    replay re-raises the interpreter's wrapped :class:`EvaluationError`
    instead.
    """
    if isinstance(term, Variable):
        return resolve(term.name)
    if isinstance(term, Constant):
        value = term.value
        if value is None or value is True or value is False:
            return repr(value)
        if type(value) in (str, int, float):  # repr round-trips exactly
            return repr(value)
        return None
    if isinstance(term, UnaryOp):
        inner = _term_source(term.operand, resolve)
        if inner is None:
            return None
        if term.op == "-":
            return f"(-{inner})"
        if term.op == "!":
            return f"(not {inner})"
        return None
    if isinstance(term, BinaryOp):
        left = _term_source(term.left, resolve)
        right = _term_source(term.right, resolve)
        if left is None or right is None:
            return None
        op = term.op
        if op == "+":
            return f"_plus({left}, {right})"
        if op in _DIRECT_BINARY_OPS:
            return f"({left} {op} {right})"
        if op == "&&":
            return f"(bool({left}) and bool({right}))"
        if op == "||":
            return f"(bool({left}) or bool({right}))"
        return None
    if isinstance(term, FunctionCall):
        args = [_term_source(arg, resolve) for arg in term.args]
        if any(arg is None for arg in args):
            return None
        # Registry lookup stays at call time (engines may re-register
        # builtins); a missing name raises KeyError -> interpreter replay
        # -> the usual UnknownFunctionError.
        return f"functions._functions[{term.name!r}]([{', '.join(args)}])"
    return None


def generate_finalizer(
    literal_infos, head: Optional[Atom], is_aggregate: bool
) -> Optional[Callable[..., None]]:
    """Generate a straight-line finalizer function for one compiled plan.

    Translates the rule's non-atom literal sequence plus the head emission
    into exec-compiled Python source, eliminating the per-literal dispatch
    of the closure-based finalizer.  Signature of the generated function:
    ``finalize(plan, engine, env, body_facts, delta)``; it takes ownership
    of ``env`` exactly like ``CompiledDeltaPlan._finalize``.

    Error handling is *replay-based*: evaluation is pure, so on any
    exception the handler delegates the entire finalization to the
    interpreted ``plan._finalize_replay`` which reproduces the exact
    interpreter behaviour (including wrapped error messages).  Emission and
    aggregate application are stateful and therefore sit outside the
    guarded region — they run exactly once on either path.

    Returns ``None`` when any term falls outside the supported source
    subset; callers keep the closure-based finalizer for those plans.
    """
    lines = [
        "def finalize(plan, engine, env, body_facts, delta):",
        "    functions = engine.functions",
        "    try:",
    ]
    guarded = 0
    for info in literal_infos:
        literal = info.literal
        if isinstance(literal, Assignment):
            source = _term_source(literal.expression)
            if source is None:
                return None
            lines.append(f"        env[{literal.variable.name!r}] = {source}")
        else:
            source = _term_source(literal.expression)
            if source is None:
                return None
            lines.append(f"        if not {source}:")
            lines.append("            return")
        guarded += 1
    if is_aggregate:
        if not guarded:
            lines = lines[:-1]  # no guarded region needed: drop the try
            lines.append(
                "    engine._apply_aggregate(plan.rule, env, body_facts, delta)"
            )
            source_text = "\n".join(lines)
        else:
            lines.append("    except Exception:")
            lines.append("        plan._finalize_replay(engine, body_facts, delta)")
            lines.append("        return")
            lines.append(
                "    engine._apply_aggregate(plan.rule, env, body_facts, delta)"
            )
            source_text = "\n".join(lines)
    else:
        if head is None:
            return None
        head_sources = [_term_source(arg) for arg in head.args]
        if any(source is None for source in head_sources):
            return None
        if len(head_sources) == 1:
            head_tuple = f"({head_sources[0]},)"
        else:
            head_tuple = "(" + ", ".join(head_sources) + ")"
        lines.append(f"        _values = {head_tuple}")
        lines.append("    except Exception:")
        lines.append("        plan._finalize_replay(engine, body_facts, delta)")
        lines.append("        return")
        lines.append(
            f"    _fact = _Fact({head.name!r}, _values, {head.location_index!r})"
        )
        lines.append(
            "    engine._emit(plan.rule, delta.action, _fact, env, body_facts, delta)"
        )
        source_text = "\n".join(lines)
    namespace = {"_plus": _plus, "_Fact": None}
    from ..ast import Fact  # local import: ast must not depend on this module

    namespace["_Fact"] = Fact
    exec(compile(source_text, "<plan-finalizer>", "exec"), namespace)  # noqa: S102
    return namespace["finalize"]


def generate_zero_step_executor(
    trigger_atom: Atom, literal_infos, head: Optional[Atom], is_aggregate: bool
) -> Optional[Callable[..., None]]:
    """Generate the fully fused executor for a plan with no join steps.

    Zero-step plans — every bookkeeping rule the provenance rewrite emits —
    spend their whole budget on dict traffic: a binder dict per delta, an
    ``env`` read per variable occurrence.  This generator fuses trigger
    matching, literal evaluation and head emission into one exec-compiled
    function over the delta's raw value tuple: trigger variables become
    positional ``values[i]`` reads, assigned variables become Python
    locals, and the binding dict is only materialized when a rule listener
    actually needs it.  Signature: ``execute0(plan, engine, values, delta)``.

    Semantics are identical to ``CompiledDeltaPlan.execute`` on a zero-step
    plan: same trigger-match checks, same ``executions`` accounting, and
    the same replay-based error handling (see :func:`generate_finalizer`).
    Returns ``None`` when the rule needs the dict-based path (aggregate
    head, expression trigger arguments, unsupported terms).
    """
    if is_aggregate:
        return None  # _apply_aggregate reads the env mapping directly
    if head is None:
        return None
    classified = _classify_args(trigger_atom, frozenset())
    if classified is None:
        return None
    const_checks, _bound, repeat_checks, fresh_binds = classified
    arity = len(trigger_atom.args)

    sources: Dict[str, str] = {
        name: f"values[{position}]" for position, name in fresh_binds
    }

    def resolve(name: str) -> Optional[str]:
        return sources.get(name)

    namespace: Dict[str, Any] = {"_plus": _plus}
    lines = [
        "def execute0(plan, engine, values, delta):",
        f"    if len(values) != {arity}:",
        "        return",
    ]
    for index, (position, value) in enumerate(const_checks):
        namespace[f"_const{index}"] = value
        lines.append(f"    if _const{index} != values[{position}]:")
        lines.append("        return")
    for position, first in repeat_checks:
        lines.append(f"    if values[{first}] != values[{position}]:")
        lines.append("        return")
    lines.append("    plan.executions += 1")
    lines.append("    functions = engine.functions")
    lines.append("    try:")
    local_index = 0
    assigned_order: List[str] = []  # assignment targets, first-written order
    for info in literal_infos:
        literal = info.literal
        if isinstance(literal, Assignment):
            source = _term_source(literal.expression, resolve)
            if source is None:
                return None
            name = literal.variable.name
            if name not in assigned_order and name not in sources:
                assigned_order.append(name)
            local = f"_local{local_index}"
            local_index += 1
            lines.append(f"        {local} = {source}")
            sources[name] = local
        else:
            source = _term_source(literal.expression, resolve)
            if source is None:
                return None
            lines.append(f"        if not {source}:")
            lines.append("            return")
    head_sources = [_term_source(arg, resolve) for arg in head.args]
    if any(source is None for source in head_sources):
        return None
    if len(head_sources) == 1:
        head_tuple = f"({head_sources[0]},)"
    else:
        head_tuple = "(" + ", ".join(head_sources) + ")"
    lines.append(f"        _values = {head_tuple}")
    lines.append("    except Exception:")
    lines.append("        plan._finalize_replay(engine, (delta.fact,), delta)")
    lines.append("        return")
    # The env dict exists only for rule listeners; reproduce the
    # interpreter's exact key order — trigger variables in argument order,
    # then assignment targets in first-written order (overwritten trigger
    # variables keep their position but carry the final value).
    env_pairs = [
        f"{name!r}: {sources[name]}" for _, name in fresh_binds
    ] + [f"{name!r}: {sources[name]}" for name in assigned_order]
    lines.extend(
        _emit_source(
            indent="    ",
            head_name=head.name,
            head_location_index=head.location_index,
            env_literal="{" + ", ".join(env_pairs) + "}",
            body_facts_source="(delta.fact,)",
        )
    )
    _fill_runtime_namespace(namespace)
    source_text = "\n".join(lines)
    exec(compile(source_text, "<plan-zero-step>", "exec"), namespace)  # noqa: S102
    return namespace["execute0"]


def _emit_source(
    indent: str,
    head_name: str,
    head_location_index: int,
    env_literal: str,
    body_facts_source: str,
) -> List[str]:
    """Source lines emitting the head fact from a fused executor.

    When the engine has no annotation policy and no rule listeners — the
    reference-provenance configuration the rewrite runs under — the entire
    ``_emit`` body is inlined: counter bump, delta allocation and local
    enqueue (or send).  Every other configuration falls back to
    ``engine._emit`` with the listener env built outside the replay guard
    (all names it reads were bound inside it).  Semantics and counters are
    identical to ``NDlogEngine._emit`` in both branches.
    """
    i = indent
    return [
        f"{i}_fact = _Fact({head_name!r}, _values, {head_location_index!r})",
        f"{i}if engine.annotation_policy is None and not engine._rule_listeners:",
        f"{i}    stats = engine.stats",
        f'{i}    stats["rule_firings"] += 1',
        f"{i}    _d = _new_delta(_Delta)",
        f"{i}    _d.action = delta.action",
        f"{i}    _d.fact = _fact",
        f"{i}    _d.annotation = None",
        f"{i}    _dest = _values[{head_location_index!r}]",
        f"{i}    if _dest == engine.address:",
        f"{i}        engine._queue.append(_d)",
        f"{i}    else:",
        f'{i}        stats["deltas_sent"] += 1',
        f"{i}        _send = engine._send",
        f"{i}        if _send is None:",
        f"{i}            raise _EvaluationError(",
        f'{i}                f"rule {{plan.rule.label}} derived remote tuple '
        f'{{_fact}} but no send callback is configured"',
        f"{i}            )",
        f"{i}        _send(_dest, _d)",
        f"{i}else:",
        f"{i}    if engine._rule_listeners:",
        f"{i}        env = {env_literal}",
        f"{i}    else:",
        f"{i}        env = None",
        f"{i}    engine._emit(plan.rule, delta.action, _fact, env,"
        f" {body_facts_source}, delta)",
    ]


def _fill_runtime_namespace(namespace: Dict[str, Any]) -> None:
    """Bind the runtime helpers the generated emit path references."""
    from ..ast import Fact  # local imports: ast must not depend on this module
    from ..engine import Delta

    namespace["_Fact"] = Fact
    namespace["_Delta"] = Delta
    namespace["_new_delta"] = Delta.__new__
    namespace["_EvaluationError"] = EvaluationError


def generate_one_step_executor(
    trigger_atom: Atom,
    step,  # CompiledStep (not imported: avoids a module cycle)
    literal_infos,
    head: Optional[Atom],
    is_aggregate: bool,
    initial_literal_prefix: int,
) -> Optional[Callable[..., None]]:
    """Generate the fused executor for a plan with exactly one join step.

    Extends :func:`generate_zero_step_executor` with an inlined index
    probe: the lookup key is built positionally from the delta's values,
    the bucket is fetched once, and per-row matching/finalization runs over
    positional ``row[j]`` reads — no binding dict, no per-row closure
    dispatch.  Counter updates (``index_lookups`` / ``full_scans`` /
    ``tuples_scanned``) are identical to the dict-based path.

    Returns ``None`` whenever any piece needs the general machinery
    (aggregates, expression arguments, pushed-down literal prefixes).
    """
    if is_aggregate or head is None or initial_literal_prefix:
        return None
    trigger_classified = _classify_args(trigger_atom, frozenset())
    if trigger_classified is None:
        return None
    t_consts, _tb, t_repeats, t_binds = trigger_classified
    trigger_vars = frozenset(name for _, name in t_binds)
    step_atom: Atom = step.atom
    step_classified = _classify_args(step_atom, trigger_vars)
    if step_classified is None:
        return None
    s_consts, s_bounds, s_repeats, s_binds = step_classified
    if step.literal_prefix:
        return None
    lookups = sorted(step.lookups, key=lambda spec: spec.position)
    if any(spec.kind == "expr" for spec in lookups):
        return None

    sources: Dict[str, str] = {
        name: f"values[{position}]" for position, name in t_binds
    }
    trigger_sources = dict(sources)
    step_new_sources = {name: f"row[{position}]" for position, name in s_binds}
    sources.update(step_new_sources)

    def resolve(name: str) -> Optional[str]:
        return sources.get(name)

    namespace: Dict[str, Any] = {"_plus": _plus}
    arity = len(trigger_atom.args)
    lines = [
        "def execute1(plan, engine, values, delta):",
        f"    if len(values) != {arity}:",
        "        return",
    ]
    for index, (position, value) in enumerate(t_consts):
        namespace[f"_tconst{index}"] = value
        lines.append(f"    if _tconst{index} != values[{position}]:")
        lines.append("        return")
    for position, first in t_repeats:
        lines.append(f"    if values[{first}] != values[{position}]:")
        lines.append("        return")
    lines.append("    plan.executions += 1")
    lines.append("    functions = engine.functions")
    lines.append(f"    table = engine.catalog.table({step_atom.name!r})")
    lines.append("    stats = engine.stats")
    if lookups:
        key_parts = []
        for index, spec in enumerate(lookups):
            if spec.kind == "const":
                namespace[f"_kconst{index}"] = _frozen_const(spec.source)
                key_parts.append(f"_kconst{index}")
            else:
                source = trigger_sources.get(spec.source)
                if source is None:  # pragma: no cover - compiler guarantees
                    return None
                key_parts.append(f"_freeze({source})")
        if len(key_parts) == 1:
            key_tuple = f"({key_parts[0]},)"
        else:
            key_tuple = "(" + ", ".join(key_parts) + ")"
        positions = tuple(spec.position for spec in lookups)
        lines.append('    stats["index_lookups"] += 1')
        lines.append(f"    bucket = table.probe({positions!r}, {key_tuple})")
        lines.append("    if bucket:")
        lines.append("        rows = bucket")
        lines.append("        scanned = len(bucket)")
        lines.append("    else:")
        lines.append("        rows = ()")
        lines.append("        scanned = 0")
    else:
        lines.append('    stats["full_scans"] += 1')
        lines.append("    rows = table.rows_list()")
        lines.append("    scanned = len(rows)")
    step_arity = len(step_atom.args)
    lines.append("    for row in rows:")
    lines.append(f"        if len(row) != {step_arity}:")
    lines.append("            continue")
    for index, (position, value) in enumerate(s_consts):
        namespace[f"_sconst{index}"] = value
        lines.append(f"        if _sconst{index} != row[{position}]:")
        lines.append("            continue")
    for position, name in s_bounds:
        lines.append(f"        if {trigger_sources[name]} != row[{position}]:")
        lines.append("            continue")
    for position, first in s_repeats:
        lines.append(f"        if row[{first}] != row[{position}]:")
        lines.append("            continue")
    local_index = 0
    assigned_order: List[str] = []
    row_sources = dict(sources)  # per-row resolution incl. assignment locals

    def resolve_row(name: str) -> Optional[str]:
        return row_sources.get(name)

    body = []
    ok = True
    for info in literal_infos:
        literal = info.literal
        source = _term_source(literal.expression, resolve_row)
        if source is None:
            ok = False
            break
        if isinstance(literal, Assignment):
            name = literal.variable.name
            if name not in assigned_order and name not in sources:
                assigned_order.append(name)
            local = f"_local{local_index}"
            local_index += 1
            body.append(f"            {local} = {source}")
            row_sources[name] = local
        else:
            body.append(f"            if not {source}:")
            body.append("                continue")
    if not ok:
        return None
    head_sources = [_term_source(arg, resolve_row) for arg in head.args]
    if any(source is None for source in head_sources):
        return None
    if len(head_sources) == 1:
        head_tuple = f"({head_sources[0]},)"
    else:
        head_tuple = "(" + ", ".join(head_sources) + ")"
    lines.append(
        f"        _bfact = _Fact({step_atom.name!r}, row, {step_atom.location_index!r})"
    )
    lines.append("        try:")
    lines.extend(body)
    lines.append(f"            _values = {head_tuple}")
    lines.append("        except Exception:")
    lines.append(
        "            plan._finalize_replay(engine, (delta.fact, _bfact), delta)"
    )
    lines.append("            continue")
    env_pairs = (
        [f"{name!r}: {row_sources[name]}" for _, name in t_binds]
        + [f"{name!r}: {row_sources[name]}" for _, name in s_binds]
        + [f"{name!r}: {row_sources[name]}" for name in assigned_order]
    )
    lines.extend(
        _emit_source(
            indent="        ",
            head_name=head.name,
            head_location_index=head.location_index,
            env_literal="{" + ", ".join(env_pairs) + "}",
            body_facts_source="(delta.fact, _bfact)",
        )
    )
    lines.append('    stats["tuples_scanned"] += scanned')
    from ..catalog import freeze_value

    _fill_runtime_namespace(namespace)
    namespace["_freeze"] = freeze_value
    source_text = "\n".join(lines)
    exec(compile(source_text, "<plan-one-step>", "exec"), namespace)  # noqa: S102
    return namespace["execute1"]


def _frozen_const(value: Any) -> Any:
    from ..catalog import freeze_value

    return freeze_value(value)
