"""Cost model for join ordering.

The model estimates how many rows a lookup against one body atom will yield
given the set of variables already bound.  It is deliberately simple — the
same shape classical Datalog evaluators use:

* the base cardinality is the *live* row count of the relation's local
  fragment (taken from the owning :class:`~repro.datalog.catalog.Catalog`),
  so plans compiled after tables have filled up see real sizes;
* every bound argument position multiplies the estimate by a fixed
  selectivity factor (equality predicates on hash-indexed positions);
* a lookup whose bound positions cover the relation's declared primary key
  yields at most one row;
* a lookup with no bound positions is a full scan of the fragment.

Estimates only steer ordering — a wrong estimate can never change results,
only performance — so a coarse model with deterministic tie-breaking is
preferable to a clever one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from ..catalog import Catalog
from .normalize import AtomSignature

__all__ = ["CostEstimate", "CatalogStatistics", "CostModel", "DEFAULT_SELECTIVITY"]

#: Fraction of a relation assumed to survive one equality constraint.
DEFAULT_SELECTIVITY = 0.1


@dataclass(frozen=True)
class CostEstimate:
    """Estimated outcome of scanning one atom under a set of bound variables."""

    #: expected number of rows the lookup yields.
    rows: float
    #: argument positions that will be constrained at lookup time.
    bound_positions: Tuple[int, ...]
    #: True when no position is constrained (full fragment scan).
    full_scan: bool
    #: True when the constrained positions cover the declared primary key.
    key_covered: bool


class CatalogStatistics:
    """Live relation statistics backed by a node's catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def cardinality(self, name: str) -> int:
        """Current row count of the local fragment of *name* (0 if absent)."""
        table = self._catalog.get(name)
        return len(table) if table is not None else 0

    def key_positions(self, name: str) -> Tuple[int, ...]:
        """Declared primary-key positions of *name* (empty when keyless)."""
        table = self._catalog.get(name)
        return table.key_positions if table is not None else ()

    def snapshot(self, names: Iterable[str]) -> dict:
        """Cardinalities of the given relations, for plan staleness checks."""
        return {name: self.cardinality(name) for name in sorted(set(names))}


class CostModel:
    """Estimates lookup costs from live catalog statistics."""

    def __init__(
        self,
        statistics: CatalogStatistics,
        selectivity: float = DEFAULT_SELECTIVITY,
    ):
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        self.statistics = statistics
        self.selectivity = selectivity

    def bound_positions(
        self, signature: AtomSignature, bound_vars: FrozenSet[str]
    ) -> Tuple[int, ...]:
        """Argument positions constrainable when *bound_vars* are known.

        Constants are always constrainable, variable positions when the
        variable is bound, and expression positions when every variable the
        expression reads is bound.
        """
        positions = set(signature.const_positions)
        for name, var_positions in signature.var_positions.items():
            if name in bound_vars:
                positions.update(var_positions)
        for position, reads in signature.expr_positions.items():
            if reads <= bound_vars:
                positions.add(position)
        return tuple(sorted(positions))

    def estimate(
        self,
        signature: AtomSignature,
        bound_vars: FrozenSet[str],
        cardinality: Optional[int] = None,
    ) -> CostEstimate:
        """Estimate the rows yielded by scanning *signature* under *bound_vars*."""
        positions = self.bound_positions(signature, bound_vars)
        rows = (
            cardinality
            if cardinality is not None
            else self.statistics.cardinality(signature.name)
        )
        keys = self.statistics.key_positions(signature.name)
        key_covered = bool(keys) and set(keys) <= set(positions)
        if not positions:
            return CostEstimate(
                rows=float(rows), bound_positions=(), full_scan=True, key_covered=False
            )
        if key_covered:
            estimated = min(float(rows), 1.0)
        else:
            estimated = float(rows) * (self.selectivity ** len(positions))
            if rows > 0:
                estimated = max(estimated, 1.0)
        return CostEstimate(
            rows=estimated,
            bound_positions=positions,
            full_scan=False,
            key_covered=key_covered,
        )
