"""Greedy join-order optimizer.

Given a normalized rule, its join graph, and the position of the delta
trigger atom, :class:`GreedyOptimizer` orders the remaining body atoms by
repeatedly picking the cheapest next lookup under the variables bound so
far.  The ranking is lexicographic:

1. atoms connected (by shared variables) to the already-bound set beat
   disconnected ones — a cross product is only taken when forced;
2. lower estimated rows (from the :class:`~repro.datalog.plan.cost.CostModel`)
   beat higher;
3. more constrained positions beat fewer (useful when tables are still
   empty at program-load time and all row estimates are zero);
4. body order breaks remaining ties, keeping plans deterministic.

The result is a :class:`JoinOrder`: the chosen atom sequence with the
lookup positions and cost estimate recorded per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from .cost import CostEstimate, CostModel
from .join_graph import JoinGraph
from .normalize import AtomSignature, NormalizedRule

__all__ = ["OrderedStep", "JoinOrder", "GreedyOptimizer"]


@dataclass(frozen=True)
class OrderedStep:
    """One entry of a join order: which atom to scan next, and how."""

    signature: AtomSignature
    estimate: CostEstimate
    #: True when the atom shares a variable with the atoms joined before it.
    connected: bool


@dataclass(frozen=True)
class JoinOrder:
    """The optimizer's output for one (rule, trigger position) pair."""

    trigger_position: int
    steps: Tuple[OrderedStep, ...]
    #: estimated total rows scanned across all steps (ordering figure of merit).
    estimated_scan: float

    @property
    def positions(self) -> Tuple[int, ...]:
        return tuple(step.signature.position for step in self.steps)


class GreedyOptimizer:
    """Orders body atoms greedily by estimated lookup cost."""

    def __init__(self, cost_model: CostModel):
        self.cost_model = cost_model

    def order(
        self,
        normalized: NormalizedRule,
        graph: JoinGraph,
        trigger_position: int,
    ) -> JoinOrder:
        """Choose a join order for a delta arriving at *trigger_position*."""
        trigger = normalized.signature(trigger_position)
        bound_vars: Set[str] = set(trigger.variables)
        bound_atoms: Set[int] = {trigger_position}
        remaining = [
            signature
            for signature in normalized.atoms
            if signature.position != trigger_position
        ]
        steps: List[OrderedStep] = []
        total = 0.0
        # Expected number of bindings flowing into the next step: each step's
        # scan runs once per binding produced upstream.
        fanout = 1.0
        while remaining:
            best = None
            best_rank = None
            for signature in remaining:
                connected = graph.is_connected_to(signature.position, bound_atoms)
                estimate = self.cost_model.estimate(
                    signature, frozenset(bound_vars)
                )
                rank = (
                    0 if connected else 1,
                    estimate.rows,
                    -len(estimate.bound_positions),
                    signature.position,
                )
                if best_rank is None or rank < best_rank:
                    best = (signature, estimate, connected)
                    best_rank = rank
            signature, estimate, connected = best
            steps.append(
                OrderedStep(signature=signature, estimate=estimate, connected=connected)
            )
            total += fanout * estimate.rows
            fanout *= max(estimate.rows, 1.0)
            bound_vars.update(signature.variables)
            bound_atoms.add(signature.position)
            remaining = [s for s in remaining if s.position != signature.position]
        return JoinOrder(
            trigger_position=trigger_position,
            steps=tuple(steps),
            estimated_scan=total,
        )
