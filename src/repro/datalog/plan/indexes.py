"""Planner-selected secondary indexes.

Tables store rows hashed by the full tuple; equality lookups on a subset of
argument positions need a secondary hash index over exactly those
positions.  The :class:`IndexManager` is the planner's bookkeeper for these
indexes: when a compiled plan decides a step will constrain positions
``(0, 2)`` of relation ``path``, the manager materializes that index up
front (so the first delta does not pay a lazy build during evaluation) and
records it, and the table keeps it consistent incrementally on every
insert and delete.

The manager also owns the counters benchmarks read: how many indexes were
registered and how many index entries exist, which — together with the
engine's ``tuples_scanned`` / ``index_lookups`` counters — lets reports
show scan-count reductions rather than just wall-clock.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, MutableMapping, Optional, Set, Tuple

from ..catalog import Catalog

__all__ = ["IndexManager"]


class IndexManager:
    """Creates and tracks the secondary indexes chosen by the planner."""

    def __init__(
        self,
        catalog: Catalog,
        counters: Optional[MutableMapping[str, int]] = None,
    ):
        self.catalog = catalog
        self.counters: MutableMapping[str, int] = (
            counters if counters is not None else defaultdict(int)
        )
        self._registered: Dict[str, Set[Tuple[int, ...]]] = {}

    def require(self, name: str, positions: Iterable[int]) -> Tuple[int, ...]:
        """Ensure a hash index on *positions* of relation *name* exists.

        Returns the canonical (sorted) position tuple, or ``()`` when no
        position is given (a full scan needs no index).  Safe to call
        repeatedly; the index is built once and maintained incrementally by
        the table afterwards.
        """
        canonical = tuple(sorted(set(positions)))
        if not canonical:
            return ()
        registered = self._registered.setdefault(name, set())
        if canonical not in registered:
            self.catalog.table(name).ensure_index(canonical)
            registered.add(canonical)
            self.counters["indexes_registered"] += 1
        return canonical

    def registered(self) -> Dict[str, List[Tuple[int, ...]]]:
        """Relation name -> sorted list of registered index position sets."""
        return {
            name: sorted(positions) for name, positions in self._registered.items()
        }

    def is_registered(self, name: str, positions: Iterable[int]) -> bool:
        canonical = tuple(sorted(set(positions)))
        return canonical in self._registered.get(name, ())

    def index_entry_count(self) -> int:
        """Total rows currently held across all registered indexes."""
        total = 0
        for name, position_sets in self._registered.items():
            table = self.catalog.table(name)
            for positions in position_sets:
                total += table.index_size(positions)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        count = sum(len(v) for v in self._registered.values())
        return f"IndexManager(indexes={count})"
