"""Columnar batch evaluation core (``pipeline="columnar"``).

The batched pipeline (PR 3) amortizes *dispatch* but still evaluates one
delta tuple at a time: every delta pays a ``_fire_rules`` walk, a per-tuple
index probe, per-tuple counter updates and a queue round-trip.  Worse, the
provenance rewrite's emission pattern *alternates* predicates (each
``eProvTmp`` delta emits a ``ruleExec`` row and an ``eProvMsg`` event, so
the queue reads ``rE, eM, rE, eM, ...``), which means most deltas are
singleton runs that consecutive-run batching cannot group at all.

This module evaluates whole *windows* of the delta queue instead:

1. ``run()`` drains the queue into a window (bounded by ``max_steps``);
2. the window is cut into *segments* — maximal prefixes in which no
   predicate writes a table that another grouped predicate reads — via the
   per-predicate read/write sets of the compiled plans;
3. within a segment, deltas are regrouped by predicate into
   :class:`ColumnBlock` batches (non-consecutive deltas included, original
   queue order preserved inside each block);
4. table mutations are applied per block in queue order, then each
   (rule, trigger) firing runs as one *batch kernel* over the whole block:
   a selection vector of trigger-matching deltas, a precomputed key column,
   one :meth:`~repro.datalog.catalog.Table.probe_many` bulk index probe,
   and a tight emission loop over the probed buckets;
5. every emission is buffered per source delta and *replayed* in exact
   per-delta, per-firing order afterwards — local head deltas join the
   back of the queue and remote ones hit the send callback in precisely
   the sequence the per-tuple pipelines produce.

Because all original window deltas precede any derived delta in FIFO
order, and the segment conflict check guarantees each firing joins against
the same table state it would have seen under per-tuple processing, the
fixpoints, VIDs, provenance rows, annotations and ``stats`` counters are
bit-identical to ``pipeline="batched"`` and ``pipeline="delta"`` — the
equivalence sweep in ``tests/test_plan_equivalence.py`` enforces this, and
both older pipelines are retained as oracles.

Anything the kernels cannot batch safely falls back to the batched
pipeline's own code paths at the finest grain that stays correct:

* engines with an annotation policy or rule listeners run the batched
  loop wholesale (``NDlogEngine.run`` checks before entering this module);
* predicates whose plans read their own table (self-joins) or re-cost
  themselves against live cardinalities (multi-step staleness checks)
  process apply+fire per delta, in order, with emissions buffered;
* aggregate and multi-step plans fire through the engine's per-delta
  machinery inside :func:`run_generic_firing` (emissions redirected).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..aggregates import AggregateState
from ..ast import Atom, is_event_predicate
from ..errors import EvaluationError
from ..functions import (
    _DEFAULTS as _DEFAULT_FUNCTIONS,
    _sha1_cache,
    _stringify,
    note_sha1_hits,
    sha1_for_preimage,
)
from ..terms import BinaryOp, Constant, FunctionCall, UnaryOp, Variable
from .compiled_exec import _DIRECT_BINARY_OPS, _classify_args, _plus
from .compiler import STALENESS_CHECK_PERIOD, CompiledDeltaPlan

__all__ = [
    "ColumnBlock",
    "batch_kernel_for",
    "describe_kernel",
    "process_window",
    "predicate_info",
]


# ---------------------------------------------------------------------- #
# per-predicate dispatch metadata
# ---------------------------------------------------------------------- #
#: Group evaluation modes (see :class:`PredicateInfo.mode`).
EVENT = "event"  #: transient predicate: no table, fire kernels only
VECTOR = "vector"  #: materialized: batch apply phase, then batch kernels
SEQUENTIAL = "sequential"  #: per-delta apply+fire (self-join / staleness)


class PredicateInfo:
    """How the columnar pipeline evaluates one predicate's delta blocks.

    ``reads`` is the union of every table the predicate's firings consult:
    join-step fragments for 0/1-step plans, and — for multi-step plans,
    whose staleness re-costing reads live cardinalities — every body
    relation of the rule.  The segment builder uses it (with ``writes`` =
    the predicate itself when materialized) to decide which predicates may
    share a segment without observing each other's mutations early.
    """

    __slots__ = ("name", "is_event", "mode", "reads", "firings", "kernels")

    def __init__(self, name, is_event, mode, reads, firings, kernels):
        self.name = name
        self.is_event = is_event
        self.mode = mode
        self.reads = reads
        self.firings = firings
        self.kernels = kernels


def predicate_info(engine, name: str) -> PredicateInfo:
    """Build (and cache on the engine) the dispatch metadata for *name*."""
    is_event = engine._event_names.get(name)
    if is_event is None:
        is_event = engine._event_names[name] = is_event_predicate(name)
    firings = engine._firings_by_predicate.get(name, ())
    reads: set = set()
    sequential = False
    kernels: List[Optional[Callable]] = []
    for firing in firings:
        plan = firing.plan
        if plan is None:
            # Uncompiled rule: the generic path plans lazily and may touch
            # any body fragment — treat every body atom as read and keep
            # the whole trigger predicate per-delta when materialized.
            reads.update(atom.name for atom in firing.rule.body_atoms)
            if not is_event:
                sequential = True
            kernels.append(None)
            continue
        if plan.multi_step:
            # Staleness re-costing compares live cardinalities of every
            # body relation (the trigger's own table included), so batch
            # apply/fire phase separation could flip a recompile decision.
            reads.update(plan.cardinality_snapshot.keys())
            reads.update(step.atom.name for step in plan.steps)
            if not is_event:
                sequential = True
            kernels.append(None)
            continue
        for step in plan.steps:
            reads.add(step.atom.name)
        kernels.append(batch_kernel_for(plan))
    if not is_event and name in reads:
        sequential = True  # self-join: each firing must see prior mutations
    if is_event:
        mode = EVENT
    elif sequential:
        mode = SEQUENTIAL
    else:
        mode = VECTOR
    info = PredicateInfo(name, is_event, mode, frozenset(reads), firings, kernels)
    engine._columnar_info[name] = info
    return info


class ColumnBlock:
    """One predicate's deltas within a segment, in queue order.

    ``items`` holds ``(slot, delta)`` pairs where ``slot`` is the delta's
    position inside the window segment — the key under which its buffered
    emissions are replayed.  Columns are extracted lazily; the batch
    kernels build their probe-key columns from these positional reads.
    """

    __slots__ = ("info", "items")

    def __init__(self, info: PredicateInfo):
        self.info = info
        self.items: List[Tuple[int, Any]] = []

    def __len__(self) -> int:
        return len(self.items)

    def column(self, position: int) -> List[Any]:
        """Extract one trigger-attribute column across the block."""
        return [delta.fact.values[position] for _, delta in self.items]


class _Ready(list):
    """Emissions already produced (sequential groups), awaiting replay."""

    __slots__ = ()


class EmissionCapture:
    """Stand-in for the engine queue / send callback during buffering.

    Installed over ``engine._queue`` (it only needs ``append``) and —
    when a real send callback exists — ``engine._send`` while per-delta
    fallback code runs, so every emission lands in the current delta's
    ordered buffer instead of escaping early.  When no send callback is
    configured ``engine._send`` is left as ``None`` so ``_emit`` raises
    the exact per-tuple :class:`EvaluationError`.
    """

    __slots__ = ("out",)

    def __init__(self):
        self.out: Optional[List[Any]] = None

    def append(self, delta) -> None:
        self.out.append(delta)

    def send(self, destination, delta) -> None:
        self.out.append((destination, delta))


# ---------------------------------------------------------------------- #
# batch kernel generation
# ---------------------------------------------------------------------- #
#: Generated batch kernels memoized per (rule identity, trigger position),
#: mirroring the compiler's _STATIC_PARTS idiom: every node runs the same
#: program, and 0/1-step plans are never reordered by staleness recompiles,
#: so one codegen pass serves every engine in the network.
_KERNELS: Dict[Tuple[int, int], Tuple[Any, Optional[Callable]]] = {}
_KERNELS_LIMIT = 4096


def batch_kernel_for(plan: CompiledDeltaPlan) -> Optional[Callable]:
    """The generated batch kernel for *plan*, or ``None`` (generic path)."""
    try:
        return plan._batch_kernel
    except AttributeError:
        pass
    key = (id(plan.rule), plan.trigger_position)
    cached = _KERNELS.get(key)
    if cached is not None and cached[0] is plan.rule:
        kernel = cached[1]
    else:
        is_aggregate = plan.rule.is_aggregate_rule
        head = None if is_aggregate else plan.rule.head
        label = plan.rule.label
        if is_aggregate:
            if not plan.steps:
                kernel = generate_aggregate_kernel(
                    plan.trigger_atom, plan.literals, plan.rule, label
                )
            else:
                kernel = None
        elif not plan.steps:
            kernel = generate_zero_step_kernel(
                plan.trigger_atom, plan.literals, head, is_aggregate, label
            )
        elif len(plan.steps) == 1:
            kernel = generate_one_step_kernel(
                plan.trigger_atom,
                plan.steps[0],
                plan.literals,
                head,
                is_aggregate,
                plan.initial_literal_prefix,
                label,
            )
        else:
            kernel = None
        if len(_KERNELS) >= _KERNELS_LIMIT:
            _KERNELS.clear()
        _KERNELS[key] = (plan.rule, kernel)
    plan._batch_kernel = kernel
    return kernel


def _replay(plan, engine, body_facts, delta, buffer) -> None:
    """Replay one failed finalization with emissions redirected to *buffer*.

    Mirrors the per-tuple executors' replay-based error handling (see
    :func:`..compiled_exec.generate_finalizer`): evaluation is pure, so the
    interpreter reproduces the exact wrapped error — but its emissions go
    through ``engine._emit``, which must feed the ordered buffer here.
    """
    capture = engine._columnar_capture
    saved_queue = engine._queue
    saved_send = engine._send
    saved_out = capture.out
    capture.out = buffer
    engine._queue = capture
    if saved_send is not None:
        engine._send = capture.send
    try:
        plan._finalize_replay(engine, body_facts, delta)
    finally:
        capture.out = saved_out
        engine._queue = saved_queue
        engine._send = saved_send


#: Sentinel a generated kernel returns when its runtime guard finds a
#: builtin it inlined (``f_sha1`` / ``f_concat``) rebound on this engine —
#: the caller falls back to :func:`run_generic_firing`, which consults the
#: live registry per tuple exactly like the batched pipeline.
GENERIC_FALLBACK = object()


def _stringify_part(value) -> str:
    """``functions._stringify`` with C fast paths for the hot part types.

    The dynamic non-string parts of provenance preimages are integer
    costs and VID buffers / path vectors — flat sequences of strings
    (lists on freshly derived facts, tuples once frozen into a table
    row) — for which ``str`` and ``"".join`` render the identical text
    without the per-element Python recursion.  A sequence member that is
    not a string raises TypeError and falls back to the general renderer.
    """
    cls = value.__class__
    if cls is int:  # exact: bool has __class__ bool, floats fall through
        return str(value)
    if cls is list or cls is tuple:
        try:
            return "".join(value)
        except TypeError:
            return _stringify(value)
    return _stringify(value)


def _concat2(a, b) -> list:
    """``f_concat(A, B)`` specialized to two arguments (path extension).

    Produces exactly ``functions._f_concat([a, b])`` — one level of
    list/tuple flattening — without the per-call argument-list allocation
    and registry dispatch.
    """
    if isinstance(a, (list, tuple)):
        result = list(a)
    else:
        result = [a]
    if isinstance(b, (list, tuple)):
        result.extend(b)
    else:
        result.append(b)
    return result

#: Expressions cheap and pure enough to evaluate twice in a conditional
#: (a local name or a positional subscript of one).
_SIMPLE_EXPR = re.compile(r"^[_A-Za-z]\w*(\[\d+\])?$").match


class _KernelExprs:
    """Compiles rule terms into kernel source, inlining the ``f_sha1`` memo.

    The provenance rewrite evaluates ``f_sha1(f_concat(...))`` on every
    derived tuple; through the registry that costs a list allocation, an
    argument-freezing cache key and several dispatches per call.  Because
    ``_stringify`` flattens nested sequences recursively, stripping
    ``f_concat`` / ``f_append`` layers inside an ``f_sha1`` argument list is
    preimage-preserving — so the builder emits straight-line code that
    concatenates the stringified parts and memoizes the digest by the
    preimage string itself (see :func:`~repro.datalog.functions.sha1_for_preimage`).

    ``inlined`` collects the builtin names whose *default* bindings the
    generated code assumed; the kernel guards on them at call time and
    returns :data:`GENERIC_FALLBACK` when an engine re-registered one.
    ``used`` collects builtins still dispatched through the registry, whose
    lookups are hoisted to one ``dict.get`` per batch.
    """

    __slots__ = (
        "namespace",
        "inlined",
        "used",
        "uses_sha1",
        "_temps",
        "str_exprs",
        "list_exprs",
        "const_strs",
        "frozen_exprs",
        "dyn_lists",
    )

    def __init__(self, namespace: Dict[str, Any]):
        self.namespace = namespace
        self.inlined: Set[str] = set()
        self.used: Set[str] = set()
        self.uses_sha1 = False
        self._temps = 0
        #: Expression strings statically known to evaluate to ``str``
        #: (sha1 digests, string constants) — their preimage parts skip the
        #: ``_stringify`` wrapper entirely.
        self.str_exprs: Set[str] = set()
        #: Expression strings known to evaluate to a list whose elements
        #: are the recorded known-str expression strings (inlined
        #: ``f_append`` / ``f_concat`` results) — sha1 preimages splice the
        #: elements in directly instead of walking the list at runtime.
        self.list_exprs: Dict[str, List[str]] = {}
        #: Expression string -> raw value for string constants, so sha1
        #: preimage splicing can merge them into adjacent literal parts.
        self.const_strs: Dict[str, str] = {}
        #: Expression strings whose value is already its own storage-frozen
        #: image (strings, numbers, digests) — head rows built from them can
        #: carry a precomputed ``Delta.frozen`` without per-value checks.
        self.frozen_exprs: Set[str] = set()
        #: Expression strings known to evaluate to a *flat new list* whose
        #: element types are unknown (dynamic ``f_concat`` builds): their
        #: frozen image is exactly ``tuple(value)``.
        self.dyn_lists: Set[str] = set()

    def _temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"

    # -- expression compilation ------------------------------------- #
    def term_source(
        self, term, resolve, prelude: List[str], indent: str
    ) -> Optional[str]:
        """Like ``compiled_exec._term_source`` plus builtin inlining.

        Multi-statement constructs (the sha1 memo probe) are appended to
        *prelude*; the return value is always a plain expression.
        """
        if isinstance(term, Variable):
            return resolve(term.name)
        if isinstance(term, Constant):
            value = term.value
            if value is None or value is True or value is False:
                source = repr(value)
                self.frozen_exprs.add(source)
                return source
            if type(value) is str:
                source = repr(value)
                self.str_exprs.add(source)
                self.frozen_exprs.add(source)
                self.const_strs[source] = value
                return source
            if type(value) in (int, float):
                source = repr(value)
                self.frozen_exprs.add(source)
                return source
            return None
        if isinstance(term, UnaryOp):
            inner = self.term_source(term.operand, resolve, prelude, indent)
            if inner is None:
                return None
            if term.op == "-":
                return f"(-{inner})"
            if term.op == "!":
                return f"(not {inner})"
            return None
        if isinstance(term, BinaryOp):
            left = self.term_source(term.left, resolve, prelude, indent)
            right = self.term_source(term.right, resolve, prelude, indent)
            if left is None or right is None:
                return None
            op = term.op
            if op == "+":
                return f"_plus({left}, {right})"
            if op in _DIRECT_BINARY_OPS:
                return f"({left} {op} {right})"
            if op == "&&":
                return f"(bool({left}) and bool({right}))"
            if op == "||":
                return f"(bool({left}) or bool({right}))"
            return None
        if isinstance(term, FunctionCall):
            if term.name == "f_sha1":
                return self._sha1_source(term, resolve, prelude, indent)
            args = [
                self.term_source(arg, resolve, prelude, indent)
                for arg in term.args
            ]
            if any(arg is None for arg in args):
                return None
            name = term.name
            if name == "f_member" and len(args) == 2:
                # ``f_member(L, X)`` — the membership test is the exact
                # expression the registry builtin evaluates, so inlining
                # it (the per-probed-row loop-detection filter) preserves
                # both results and error behaviour.
                self.inlined.add("f_member")
                seq, value = args
                if not _SIMPLE_EXPR(seq):
                    seq = f"({seq})"
                if not _SIMPLE_EXPR(value):
                    value = f"({value})"
                return f"({value} in ({seq} or ()))"
            if name == "f_item" and len(args) in (1, 2):
                # ``f_item(L)`` / ``f_item(L, <int const>)`` — a plain
                # subscript.  Out-of-range / non-sequence errors surface as
                # IndexError/TypeError, which the kernel's except clause
                # replays through the interpreter into the exact wrapped
                # EvaluationError the registry builtin raises.
                index_src = "0"
                inlineable = True
                if len(args) == 2:
                    arg = term.args[1]
                    if isinstance(arg, Constant) and type(arg.value) is int:
                        index_src = repr(arg.value)
                    else:
                        inlineable = False
                if inlineable:
                    self.inlined.add("f_item")
                    seq = args[0]
                    if not _SIMPLE_EXPR(seq):
                        seq = f"({seq})"
                    return f"{seq}[{index_src}]"
            elif name in ("f_concat", "f_append"):
                # All-known-element builds become list literals, and their
                # element lists are remembered so downstream sha1 preimages
                # splice the parts in without walking the list at runtime.
                elements: Optional[List[str]] = []
                for arg_src in args:
                    if arg_src in self.str_exprs:
                        elements.append(arg_src)
                    elif arg_src in self.list_exprs:
                        elements.extend(self.list_exprs[arg_src])
                    else:
                        elements = None
                        break
                if elements is not None:
                    self.inlined.add(name)
                    source = "[" + ", ".join(elements) + "]"
                    self.list_exprs[source] = elements
                    return source
                if len(args) == 2:
                    # Dynamic two-argument build (path extension): a
                    # specialized helper skips the argument-list
                    # allocation and registry dispatch per call.
                    self.inlined.add(name)
                    source = f"_concat2({args[0]}, {args[1]})"
                    self.dyn_lists.add(source)
                    return source
            elif name == "f_empty" and not args:
                self.inlined.add("f_empty")
                self.list_exprs["[]"] = []
                return "[]"
            self.used.add(name)
            return f"_fn_{name}([{', '.join(args)}])"
        return None

    def _sha1_source(
        self, term: FunctionCall, resolve, prelude: List[str], indent: str
    ) -> Optional[str]:
        """Inline one ``f_sha1`` call site: preimage build + memo probe."""
        parts: List[str] = []
        const_parts: List[str] = []

        def flush_const() -> None:
            if const_parts:
                parts.append(repr("".join(const_parts)))
                const_parts.clear()

        def add_part(part) -> bool:
            if isinstance(part, FunctionCall) and part.name in (
                "f_concat",
                "f_append",
                "f_empty",
            ):
                # Preimage-preserving flattening (see class docstring).
                self.inlined.add(part.name)
                return all(add_part(sub) for sub in part.args)
            if isinstance(part, Constant):
                value = part.value
                # Constant parts stringify at generation time; the branches
                # mirror functions._stringify exactly.
                if value is None:
                    return True
                if value is True or value is False:
                    const_parts.append("1" if value else "0")
                    return True
                if type(value) is str:
                    const_parts.append(value)
                    return True
                if type(value) is int:
                    const_parts.append(str(value))
                    return True
                if type(value) is float:
                    const_parts.append(
                        str(int(value)) if value.is_integer() else str(value)
                    )
                    return True
                return False
            source = self.term_source(part, resolve, prelude, indent)
            if source is None:
                return False
            known_list = self.list_exprs.get(source)
            if known_list is not None:
                # A statically-built list of known strings: splice its
                # elements into the preimage directly.
                for element in known_list:
                    const = self.const_strs.get(element)
                    if const is not None:
                        const_parts.append(const)
                    else:
                        flush_const()
                        parts.append(element)
                return True
            if source in self.str_exprs:
                const = self.const_strs.get(source)
                if const is not None:
                    const_parts.append(const)
                else:
                    flush_const()
                    parts.append(source)
                return True
            flush_const()
            if not _SIMPLE_EXPR(source):
                temp = self._temp()
                prelude.append(f"{indent}{temp} = {source}")
                source = temp
            parts.append(
                f"({source} if {source}.__class__ is str"
                f" else _strpart({source}))"
            )
            return True

        for arg in term.args:
            if not add_part(arg):
                return None
        flush_const()
        self.inlined.add("f_sha1")
        self.uses_sha1 = True
        preimage = self._temp()
        digest = self._temp()
        joined = " + ".join(parts) if parts else repr("")
        prelude.append(f"{indent}{preimage} = {joined}")
        prelude.append(f"{indent}{digest} = _sha1get({preimage})")
        prelude.append(f"{indent}if {digest} is None:")
        prelude.append(f"{indent}    {digest} = _sha1miss({preimage})")
        prelude.append(f"{indent}else:")
        prelude.append(f"{indent}    _hits += 1")
        self.str_exprs.add(digest)
        self.frozen_exprs.add(digest)
        return digest

    # -- kernel assembly helpers ------------------------------------ #
    def preamble_lines(self, indent: str) -> List[str]:
        """Guard + hoist lines to place before a kernel's batch loop."""
        lines = [f"{indent}_fns = engine.functions._functions"]
        if self.inlined:
            checks = " or ".join(
                f"_fns.get({name!r}) is not _def_{name}"
                for name in sorted(self.inlined)
            )
            lines.append(f"{indent}if {checks}:")
            lines.append(f"{indent}    return _GENERIC")
            for name in sorted(self.inlined):
                self.namespace[f"_def_{name}"] = _DEFAULT_FUNCTIONS[name]
        for name in sorted(self.used):
            lines.append(f"{indent}_fn_{name} = _fns.get({name!r})")
        if self.uses_sha1:
            lines.append(f"{indent}_hits = 0")
        return lines

    def flush_lines(self, indent: str) -> List[str]:
        """Counter-flush lines for the kernel's ``finally`` block."""
        if not self.uses_sha1:
            return []
        return [f"{indent}if _hits:", f"{indent}    _note_sha1_hits(_hits)"]


def _fill_kernel_namespace(namespace: Dict[str, Any]) -> None:
    from ..ast import Fact
    from ..catalog import freeze_value
    from ..engine import Delta  # runtime import: engine imports this module

    namespace["_Fact"] = Fact
    namespace["_Delta"] = Delta
    namespace["_new_delta"] = Delta.__new__
    namespace["_new_fact"] = Fact.__new__
    namespace["_fset_name"] = Fact.name.__set__
    namespace["_fset_values"] = Fact.values.__set__
    namespace["_fset_loc"] = Fact.location_index.__set__
    namespace["_EvaluationError"] = EvaluationError
    namespace["_replay"] = _replay
    namespace["_GENERIC"] = GENERIC_FALLBACK
    namespace["_stringify"] = _stringify
    namespace["_strpart"] = _stringify_part
    namespace["_concat2"] = _concat2
    namespace["_sha1get"] = _sha1_cache.get
    namespace["_sha1miss"] = sha1_for_preimage
    namespace["_note_sha1_hits"] = note_sha1_hits
    namespace["_freeze"] = freeze_value


def _emit_kernel_source(
    indent: str, head: Atom, frozen: Optional[str] = None
) -> List[str]:
    """Source lines emitting one head delta into the current slot buffer.

    The inlined body of ``NDlogEngine._emit`` for the
    no-policy/no-listener configuration the columnar pipeline requires,
    with the queue append replaced by the buffered ``_o.append`` and the
    counter bumps accumulated locally (flushed once per kernel call).
    *frozen* names the local holding the head row's precomputed frozen
    image (see :func:`_head_tuple_lines`), attached as ``Delta.frozen``.
    """
    i = indent
    loc = head.location_index
    return [
        f"{i}_firings += 1",
        f"{i}_d = _new_delta(_Delta)",
        f"{i}_d.action = _action",
    ] + ([f"{i}_d.frozen = {frozen}"] if frozen else [f"{i}_d.frozen = None"]) + [
        # Slot-descriptor construction: ~2x faster than Fact.__init__ and
        # identical (head value tuples are always exact tuples here).
        f"{i}_f = _new_fact(_Fact)",
        f"{i}_fset_name(_f, {head.name!r})",
        f"{i}_fset_values(_f, _hvals)",
        f"{i}_fset_loc(_f, {loc!r})",
        f"{i}_d.fact = _f",
        f"{i}_d.annotation = None",
        f"{i}_dest = _hvals[{loc!r}]",
        f"{i}if _dest == _address:",
        f"{i}    _o.append(_d)",
        f"{i}else:",
        f"{i}    _sent += 1",
        f"{i}    if _sendcb is None:",
        f"{i}        raise _EvaluationError(",
        f'{i}            f"rule {{plan.rule.label}} derived remote tuple '
        f'{{_d.fact}} but no send callback is configured"',
        f"{i}        )",
        f"{i}    _o.append((_dest, _d))",
    ]


def _literal_lines(
    builder: _KernelExprs, literal_infos, sources: Dict[str, str], indent: str
) -> Optional[List[str]]:
    """Guarded assignment/condition lines over positional value reads."""
    from ..ast import Assignment

    resolve = sources.get
    lines: List[str] = []
    local_index = 0
    for info in literal_infos:
        literal = info.literal
        source = builder.term_source(literal.expression, resolve, lines, indent)
        if source is None:
            return None
        if isinstance(literal, Assignment):
            if _SIMPLE_EXPR(source):
                # Pure positional read or temp: alias the variable to it
                # directly instead of copying into a fresh local (values
                # are immutable for the lifetime of the item iteration).
                sources[literal.variable.name] = source
                continue
            local = f"_local{local_index}"
            local_index += 1
            lines.append(f"{indent}{local} = {source}")
            sources[literal.variable.name] = local
            if source in builder.str_exprs:
                builder.str_exprs.add(local)
            else:
                elements = builder.list_exprs.get(source)
                if elements is not None:
                    builder.list_exprs[local] = elements
            if source in builder.frozen_exprs:
                builder.frozen_exprs.add(local)
            elif source in builder.dyn_lists:
                builder.dyn_lists.add(local)
        else:
            lines.append(f"{indent}if not {source}:")
            lines.append(f"{indent}    continue")
    return lines


#: Positional reads of a probed build-side row.  Build-side rows come out of
#: table storage, i.e. they are interned frozen tuples — any value read from
#: one is already its own storage-frozen image.
_ROW_READ = re.compile(r"row\[\d+\]\Z").match


def _head_tuple_lines(
    builder: _KernelExprs, head: Atom, sources: Dict[str, str], indent: str
) -> Optional[List[str]]:
    """Prelude + ``_hvals`` / ``_hfro`` lines for the head value tuple.

    ``_hfro`` is the storage-frozen image of ``_hvals`` (what
    ``catalog._freeze`` would produce value by value), attached to the
    emitted delta so the apply phase of the *next* window skips freezing.
    Parts whose frozen form is statically known (digests, constants,
    build-side row reads, dynamic list builds) are passed through or
    shallow-tupled directly; only trigger-value passthroughs of unknown
    type pay the per-value class checks — the same checks
    ``apply_delta_block`` would otherwise run, just hoisted to the single
    point where the row is built.  Nested-container rows stay correct
    because the catalog re-freezes from ``fact.values`` when the attached
    image turns out unhashable.
    """
    resolve = sources.get
    lines: List[str] = []
    parts = []
    for arg in head.args:
        source = builder.term_source(arg, resolve, lines, indent)
        if source is None:
            return None
        parts.append(source)
    if len(parts) == 1:
        lines.append(f"{indent}_hvals = ({parts[0]},)")
    else:
        lines.append(f"{indent}_hvals = (" + ", ".join(parts) + ")")
    frozen_exprs = builder.frozen_exprs
    str_exprs = builder.str_exprs
    fro_parts: List[str] = []
    for index, part in enumerate(parts):
        read = f"_hvals[{index}]"
        if part in frozen_exprs or part in str_exprs or _ROW_READ(part):
            fro_parts.append(read)
        elif part in builder.dyn_lists or part in builder.list_exprs:
            fro_parts.append(f"tuple({read})")
        else:
            hv = f"_hv{index}"
            lines.append(f"{indent}{hv} = {read}")
            fro_parts.append(
                f"({hv} if {hv}.__class__ is str or {hv}.__class__ is int"
                f" else tuple({hv}) if {hv}.__class__ is list"
                f" else _freeze({hv}))"
            )
    if len(fro_parts) == 1:
        lines.append(f"{indent}_hfro = ({fro_parts[0]},)")
    else:
        lines.append(f"{indent}_hfro = (" + ", ".join(fro_parts) + ")")
    return lines


def generate_zero_step_kernel(
    trigger_atom: Atom,
    literal_infos,
    head: Optional[Atom],
    is_aggregate: bool,
    label: str = "",
) -> Optional[Callable]:
    """Generate the batch kernel for a plan with no join steps.

    Semantically the loop body is ``generate_zero_step_executor`` (same
    trigger checks, same ``executions`` accounting, same replay-based
    error handling), but evaluated over a whole :class:`ColumnBlock` with
    the engine attribute reads, counter flushes and emission plumbing
    hoisted out of the per-delta path.  Signature:
    ``kernel(plan, engine, items, out)`` with ``items`` a list of
    ``(slot, delta)`` pairs and ``out`` the per-slot emission buffers.
    """
    if is_aggregate or head is None:
        return None
    classified = _classify_args(trigger_atom, frozenset())
    if classified is None:
        return None
    const_checks, _bound, repeat_checks, fresh_binds = classified
    arity = len(trigger_atom.args)
    sources = {name: f"_values[{position}]" for position, name in fresh_binds}
    namespace: Dict[str, Any] = {"_plus": _plus}
    builder = _KernelExprs(namespace)
    body = [
        "    try:",
        "        for _j, _delta in items:",
        "            _values = _delta.fact.values",
        f"            if len(_values) != {arity}:",
        "                continue",
    ]
    for index, (position, value) in enumerate(const_checks):
        namespace[f"_const{index}"] = value
        body.append(f"            if _const{index} != _values[{position}]:")
        body.append("                continue")
    for position, first in repeat_checks:
        body.append(f"            if _values[{first}] != _values[{position}]:")
        body.append("                continue")
    body.append("            _matched += 1")
    body.append("            _o = out[_j]")
    body.append("            _action = _delta.action")
    body.append("            try:")
    literals = _literal_lines(
        builder, literal_infos, sources, indent="                "
    )
    if literals is None:
        return None
    body.extend(literals)
    head_lines = _head_tuple_lines(builder, head, sources, "                ")
    if head_lines is None:
        return None
    body.extend(head_lines)
    body.append("            except Exception:")
    body.append(
        "                _replay(plan, engine, (_delta.fact,), _delta, _o)"
    )
    body.append("                continue")
    body.extend(_emit_kernel_source("            ", head, "_hfro"))
    body.append("    finally:")
    body.append("        plan.executions += _matched")
    body.append("        _stats = engine.stats")
    body.append("        if _firings:")
    body.append('            _stats["rule_firings"] += _firings')
    body.append("        if _sent:")
    body.append('            _stats["deltas_sent"] += _sent')
    body.extend(builder.flush_lines("        "))
    lines = ["def kernel0(plan, engine, items, out):"]
    lines.extend(builder.preamble_lines("    "))
    lines.append("    _address = engine.address")
    lines.append("    _sendcb = engine._send")
    lines.append("    _firings = 0")
    lines.append("    _sent = 0")
    lines.append("    _matched = 0")
    lines.extend(body)
    _fill_kernel_namespace(namespace)
    source_text = "\n".join(lines)
    filename = f"<columnar-zero-step:{label}>" if label else "<columnar-zero-step>"
    exec(compile(source_text, filename, "exec"), namespace)  # noqa: S102
    kernel = namespace["kernel0"]
    kernel._source = source_text  # retained for EXPLAIN / debugging
    return kernel


def generate_aggregate_kernel(
    trigger_atom: Atom,
    literal_infos,
    rule,
    label: str = "",
) -> Optional[Callable]:
    """Generate the batch kernel for a zero-step aggregate plan.

    Inlines ``NDlogEngine._apply_aggregate`` — positional group-value
    reads, the hash-or-freeze group key, the :class:`AggregateState`
    update and the delete+insert (or refresh) emission pair — into one
    loop over the block, with ``executions`` / ``rule_firings`` /
    ``deltas_sent`` accounting batched exactly like the scalar kernels.
    The per-group dictionaries live on the engine's
    ``_CompiledAggregateRule`` entry, so generic-path firings (replays,
    other pipelines) and kernel firings maintain one shared state.
    """
    aggregate = rule.head.aggregate()
    if aggregate is None:
        return None
    agg_index, spec = aggregate
    head = rule.head
    classified = _classify_args(trigger_atom, frozenset())
    if classified is None:
        return None
    const_checks, _bound, repeat_checks, fresh_binds = classified
    arity = len(trigger_atom.args)
    sources = {name: f"_values[{position}]" for position, name in fresh_binds}
    namespace: Dict[str, Any] = {"_plus": _plus, "_AggState": AggregateState}
    builder = _KernelExprs(namespace)
    body = [
        "    try:",
        "        for _j, _delta in items:",
        "            _values = _delta.fact.values",
        f"            if len(_values) != {arity}:",
        "                continue",
    ]
    for index, (position, value) in enumerate(const_checks):
        namespace[f"_const{index}"] = value
        body.append(f"            if _const{index} != _values[{position}]:")
        body.append("                continue")
    for position, first in repeat_checks:
        body.append(f"            if _values[{first}] != _values[{position}]:")
        body.append("                continue")
    body.append("            _matched += 1")
    body.append("            _o = out[_j]")
    body.append("            _action = _delta.action")
    body.append("            try:")
    guarded = _literal_lines(
        builder, literal_infos, sources, indent="                "
    )
    if guarded is None:
        return None
    resolve = sources.get
    # Group values in head order (skipping the aggregate position), then
    # the aggregated value — the evaluation order of _apply_aggregate.
    group_names: List[str] = []
    key_parts: List[str] = []
    for position, arg in enumerate(head.args):
        if position == agg_index:
            continue
        source = builder.term_source(arg, resolve, guarded, "                ")
        if source is None:
            return None
        name = f"_g{len(group_names)}"
        guarded.append(f"                {name} = {source}")
        group_names.append(name)
        key_parts.append(name)
    if spec.is_star:
        aval_source = "1"
    else:
        aval_parts = []
        for var in spec.variables_:
            source = resolve(var)
            if source is None:
                return None
            aval_parts.append(source)
        if len(aval_parts) == 1:
            aval_source = aval_parts[0]
        else:
            aval_source = "(" + ", ".join(aval_parts) + ")"
    guarded.append(f"                _aval = {aval_source}")
    body.extend(guarded)
    body.append("            except Exception:")
    body.append(
        "                _replay(plan, engine, (_delta.fact,), _delta, _o)"
    )
    body.append("                continue")
    if len(key_parts) == 1:
        body.append(f"            _gkey = ({key_parts[0]},)")
    else:
        body.append("            _gkey = (" + ", ".join(key_parts) + ")")
    # Fused form of _apply_aggregate's hash-try/freeze: dict.get hashes the
    # key anyway, and a TypeError means a list member, frozen identically.
    body.append("            try:")
    body.append("                _state = _groups_get(_gkey)")
    body.append("            except TypeError:")
    body.append(
        "                _gkey = tuple("
        "tuple(v) if isinstance(v, list) else v for v in _gkey)"
    )
    body.append("                _state = _groups_get(_gkey)")
    body.append("            if _state is None:")
    body.append(f"                _state = _AggState({spec.func!r})")
    body.append("                _groups[_gkey] = _state")
    body.append('            if _action == "refresh":')
    body.append("                _hvals = _emitted_get(_gkey)")
    body.append("                if _hvals is not None:")
    body.extend(_emit_kernel_source("                    ", head))
    body.append("                continue")
    body.append('            if _action == "insert":')
    body.append("                _state.insert(_aval)")
    body.append("            else:")
    body.append("                _state.delete(_aval)")
    body.append("            _orow = _emitted_get(_gkey)")
    body.append("            if _state.is_empty:")
    body.append("                _nrow = None")
    body.append("            else:")
    body.append("                _res = _state.current()")
    row_parts = []
    group_iter = iter(group_names)
    for position in range(len(head.args)):
        name = "_res" if position == agg_index else next(group_iter)
        row_parts.append(f"(tuple({name}) if isinstance({name}, list) else {name})")
    if len(row_parts) == 1:
        body.append(f"                _nrow = ({row_parts[0]},)")
    else:
        body.append("                _nrow = (" + ", ".join(row_parts) + ")")
    body.append("            if _nrow == _orow:")
    body.append("                continue")
    body.append("            if _orow is not None:")
    body.append("                _hvals = _orow")
    body.append('                _action = "delete"')
    body.extend(_emit_kernel_source("                ", head))
    body.append("                del _emitted[_gkey]")
    body.append("            if _nrow is not None:")
    body.append("                _emitted[_gkey] = _nrow")
    body.append("                _hvals = _nrow")
    body.append('                _action = "insert"')
    body.extend(_emit_kernel_source("                ", head))
    body.append("    finally:")
    body.append("        plan.executions += _matched")
    body.append("        _stats = engine.stats")
    body.append("        if _firings:")
    body.append('            _stats["rule_firings"] += _firings')
    body.append("        if _sent:")
    body.append('            _stats["deltas_sent"] += _sent')
    body.extend(builder.flush_lines("        "))
    lines = ["def kernelA(plan, engine, items, out):"]
    lines.extend(builder.preamble_lines("    "))
    lines.append(f"    _compiled = engine._aggregate_rules[{rule.label!r}]")
    lines.append("    _groups = _compiled.groups")
    lines.append("    _groups_get = _groups.get")
    lines.append("    _emitted = _compiled.emitted")
    lines.append("    _emitted_get = _emitted.get")
    lines.append("    _address = engine.address")
    lines.append("    _sendcb = engine._send")
    lines.append("    _firings = 0")
    lines.append("    _sent = 0")
    lines.append("    _matched = 0")
    lines.extend(body)
    _fill_kernel_namespace(namespace)
    source_text = "\n".join(lines)
    filename = f"<columnar-aggregate:{label}>" if label else "<columnar-aggregate>"
    exec(compile(source_text, filename, "exec"), namespace)  # noqa: S102
    kernel = namespace["kernelA"]
    kernel._source = source_text  # retained for EXPLAIN / debugging
    return kernel


def generate_one_step_kernel(
    trigger_atom: Atom,
    step,  # CompiledStep
    literal_infos,
    head: Optional[Atom],
    is_aggregate: bool,
    initial_literal_prefix: int,
    label: str = "",
) -> Optional[Callable]:
    """Generate the vectorized hash-join kernel for a one-step plan.

    The probe is evaluated column-wise: one pass over the block builds a
    *selection vector* of trigger-matching deltas plus the frozen probe-key
    column, one :meth:`~repro.datalog.catalog.Table.probe_many` call
    fetches every bucket from the build-side hash index, and the emission
    loop walks ``(delta, bucket)`` pairs with positional row reads.  Safe
    because the segment conflict check guarantees the probed fragment is
    not mutated while the block fires; counters (``index_lookups`` /
    ``full_scans`` / ``tuples_scanned``) match the per-tuple executors as
    exact sums.
    """
    if is_aggregate or head is None or initial_literal_prefix:
        return None
    trigger_classified = _classify_args(trigger_atom, frozenset())
    if trigger_classified is None:
        return None
    t_consts, _tb, t_repeats, t_binds = trigger_classified
    step_atom: Atom = step.atom
    step_classified = _classify_args(
        step_atom, frozenset(name for _, name in t_binds)
    )
    if step_classified is None:
        return None
    s_consts, s_bounds, s_repeats, s_binds = step_classified
    if step.literal_prefix:
        return None
    lookups = sorted(step.lookups, key=lambda spec: spec.position)
    if any(spec.kind == "expr" for spec in lookups):
        return None

    sources = {name: f"_values[{position}]" for position, name in t_binds}
    trigger_sources = dict(sources)
    sources.update({name: f"row[{position}]" for position, name in s_binds})

    namespace: Dict[str, Any] = {"_plus": _plus}
    builder = _KernelExprs(namespace)
    arity = len(trigger_atom.args)
    step_arity = len(step_atom.args)
    # --- probe phase: selection vector + key column over the block ---
    body = ["    for _item in items:"]
    body.append("        _values = _item[1].fact.values")
    body.append(f"        if len(_values) != {arity}:")
    body.append("            continue")
    for index, (position, value) in enumerate(t_consts):
        namespace[f"_tconst{index}"] = value
        body.append(f"        if _tconst{index} != _values[{position}]:")
        body.append("            continue")
    for position, first in t_repeats:
        body.append(f"        if _values[{first}] != _values[{position}]:")
        body.append("            continue")
    body.append("        _sel_append(_item)")
    if lookups:
        from .compiled_exec import _frozen_const

        key_parts = []
        for index, spec in enumerate(lookups):
            if spec.kind == "const":
                namespace[f"_kconst{index}"] = _frozen_const(spec.source)
                key_parts.append(f"_kconst{index}")
            else:
                source = trigger_sources.get(spec.source)
                if source is None:  # pragma: no cover - compiler guarantees
                    return None
                # Inline the dominant str fast path of catalog._freeze.
                key_parts.append(
                    f"({source} if {source}.__class__ is str"
                    f" else _freeze({source}))"
                )
        if len(key_parts) == 1:
            key_tuple = f"({key_parts[0]},)"
        else:
            key_tuple = "(" + ", ".join(key_parts) + ")"
        positions = tuple(spec.position for spec in lookups)
        body.append(f"        _keys_append({key_tuple})")
    body.append("    _matched = len(_sel)")
    if lookups:
        body.append(f"    _buckets = table.probe_many({positions!r}, _keys)")
    else:
        body.append("    _rows = table.rows_list()")
        body.append("    _nrows = len(_rows)")
    body.append("    try:")
    # --- emission loop over (delta, bucket) pairs ---
    if lookups:
        body.append("        for (_j, _delta), _bucket in zip(_sel, _buckets):")
        body.append("            if not _bucket:")
        body.append("                continue")
        body.append("            _scanned += len(_bucket)")
        rows_source = "_bucket"
    else:
        body.append("        for _j, _delta in _sel:")
        body.append("            _scanned += _nrows")
        rows_source = "_rows"
    body.append("            _o = out[_j]")
    body.append("            _dfact = _delta.fact")
    body.append("            _values = _dfact.values")
    body.append("            _action = _delta.action")
    body.append(f"            for row in {rows_source}:")
    body.append(f"                if len(row) != {step_arity}:")
    body.append("                    continue")
    for index, (position, value) in enumerate(s_consts):
        namespace[f"_sconst{index}"] = value
        body.append(f"                if _sconst{index} != row[{position}]:")
        body.append("                    continue")
    for position, name in s_bounds:
        body.append(
            f"                if {trigger_sources[name]} != row[{position}]:"
        )
        body.append("                    continue")
    for position, first in s_repeats:
        body.append(f"                if row[{first}] != row[{position}]:")
        body.append("                    continue")
    body.append("                try:")
    literals = _literal_lines(
        builder, literal_infos, sources, indent="                    "
    )
    if literals is None:
        return None
    body.extend(literals)
    head_lines = _head_tuple_lines(
        builder, head, sources, "                    "
    )
    if head_lines is None:
        return None
    body.extend(head_lines)
    body.append("                except Exception:")
    body.append(
        "                    _replay(plan, engine, (_dfact, _Fact("
        f"{step_atom.name!r}, row, {step_atom.location_index!r})), _delta, _o)"
    )
    body.append("                    continue")
    body.extend(_emit_kernel_source("                ", head, "_hfro"))
    body.append("    finally:")
    body.append("        plan.executions += _matched")
    body.append("        _stats = engine.stats")
    body.append("        if _matched:")
    if lookups:
        body.append('            _stats["index_lookups"] += _matched')
    else:
        body.append('            _stats["full_scans"] += _matched')
    body.append('            _stats["tuples_scanned"] += _scanned')
    body.append("        if _firings:")
    body.append('            _stats["rule_firings"] += _firings')
    body.append("        if _sent:")
    body.append('            _stats["deltas_sent"] += _sent')
    body.extend(builder.flush_lines("        "))
    lines = ["def kernel1(plan, engine, items, out):"]
    lines.extend(builder.preamble_lines("    "))
    lines.append("    _address = engine.address")
    lines.append("    _sendcb = engine._send")
    lines.append(f"    table = engine.catalog.table({step_atom.name!r})")
    lines.append("    _firings = 0")
    lines.append("    _sent = 0")
    lines.append("    _scanned = 0")
    lines.append("    _sel = []")
    lines.append("    _sel_append = _sel.append")
    if lookups:
        lines.append("    _keys = []")
        lines.append("    _keys_append = _keys.append")
    lines.extend(body)
    _fill_kernel_namespace(namespace)
    source_text = "\n".join(lines)
    filename = f"<columnar-one-step:{label}>" if label else "<columnar-one-step>"
    exec(compile(source_text, filename, "exec"), namespace)  # noqa: S102
    kernel = namespace["kernel1"]
    kernel._source = source_text  # retained for EXPLAIN / debugging
    return kernel


# ---------------------------------------------------------------------- #
# generic (per-delta) fallback firing
# ---------------------------------------------------------------------- #
def run_generic_firing(engine, firing, items, out) -> None:
    """Run one firing per-delta over a block, with emissions buffered.

    Replicates ``NDlogEngine._fire_rules``'s fast path for a single
    firing — including the staleness-recompile block with identical
    ``executions`` alignment — under the emission capture, so aggregate,
    multi-step and not-yet-compiled plans behave exactly as in the batched
    pipeline while their emissions still replay in window order.
    """
    capture = engine._columnar_capture
    saved_queue = engine._queue
    saved_send = engine._send
    engine._queue = capture
    if saved_send is not None:
        engine._send = capture.send
    statistics = engine._statistics
    try:
        for _j, delta in items:
            capture.out = out[_j]
            plan = firing.plan
            if plan is None:
                engine._evaluate_delta_rule(firing.rule, firing.position, delta)
                continue
            fused = plan.fused_exec
            if fused is not None:
                fused(plan, engine, delta.fact.values, delta)
                continue
            values = delta.fact.values
            binder = plan.trigger_binder
            if binder is not None:
                binding = binder(values)
            else:
                binding = engine._match_atom(plan.trigger_atom, values, {})
            if binding is None:
                continue
            if (
                plan.multi_step
                and plan.executions % STALENESS_CHECK_PERIOD == 0
                and plan.is_stale(statistics)
            ):
                plan = engine._plan_compiler.compile(firing.rule, firing.position)
                plan.executions = 1
                firing.plan = plan
                engine._plans[(id(firing.rule), firing.position)] = plan
                engine.stats["plans_recompiled"] += 1
            plan.execute(engine, delta, binding)
    finally:
        capture.out = None
        engine._queue = saved_queue
        engine._send = saved_send


def _run_sequential_block(engine, block: ColumnBlock, pending) -> None:
    """Per-delta apply+fire for self-reading / staleness-checked predicates.

    Exactly the batched pipeline's per-delta path (same ``_apply_*`` /
    ``_fire_rules`` calls, so mutation-visibility and recompile timing are
    identical), with emissions captured into per-slot ``_Ready`` buffers
    for ordered replay.
    """
    info = block.info
    firings = info.firings
    capture = engine._columnar_capture
    saved_queue = engine._queue
    saved_send = engine._send
    engine._queue = capture
    if saved_send is not None:
        engine._send = capture.send
    try:
        if info.is_event:
            for slot, delta in block.items:
                buffer = _Ready()
                capture.out = buffer
                if firings:
                    engine._fire_rules(firings, delta)
                pending[slot] = buffer
            return
        table = engine.catalog.table(info.name, block.items[0][1].fact.arity)
        for slot, delta in block.items:
            buffer = _Ready()
            capture.out = buffer
            action = delta.action
            if action == "insert":
                engine._apply_insert(table, firings, delta)
            elif action == "delete":
                engine._apply_delete(table, firings, delta)
            else:
                engine._apply_refresh(table, firings, delta)
            pending[slot] = buffer
    finally:
        capture.out = None
        engine._queue = saved_queue
        engine._send = saved_send


# ---------------------------------------------------------------------- #
# the window evaluator
# ---------------------------------------------------------------------- #
def _apply_vector_block(engine, block: ColumnBlock, pending, out) -> Optional[list]:
    """Apply a materialized block's table mutations, in queue order.

    Returns the block's fire-phase work list — ``(out_index, delta)``
    pairs, in slot order, with the evicted-row DELETE before its replacing
    INSERT exactly as ``_apply_insert`` orders them — and points each
    fired slot's ``pending`` entry at its freshly allocated emission
    buffers; firing itself is deferred to the segment's kernel phase.
    Update listeners run here, during the apply — for distinct facts
    their relative order across predicates is not observable (cache
    invalidation and provenance-index maintenance commute), and per-fact
    order is preserved because a fact's deltas all sit in this one block.
    """
    from ..engine import DELETE, Delta

    items = block.items
    info = block.info
    table = engine.catalog.table(info.name, items[0][1].fact.arity)
    listeners = engine._update_listeners
    has_firings = bool(info.firings)
    out_append = out.append
    if not listeners:
        # No observers of individual outcomes: one bulk catalog call per
        # block, returning compact per-delta fire codes (None / True /
        # evicted Fact) instead of outcome objects.
        codes = table.apply_delta_block([item[1] for item in items])
        if not has_firings:
            return None
        fire: List[Any] = []
        fire_append = fire.append
        for (slot, delta), code in zip(items, codes):
            if code is True:
                buffer: List[Any] = []
                fire_append((len(out), delta))
                out_append(buffer)
                pending[slot] = (buffer,)
            elif code is not None:
                evicted: List[Any] = []
                fire_append((len(out), Delta(DELETE, code)))
                out_append(evicted)
                buffer = []
                fire_append((len(out), delta))
                out_append(buffer)
                pending[slot] = (evicted, buffer)
        return fire
    insert = table.insert
    delete = table.delete
    for slot, delta in items:
        action = delta.action
        if action == "insert":
            outcome = insert(delta.fact.values)
            replaced = outcome.replaced
            if replaced is not None:
                for listener in listeners:
                    listener(DELETE, replaced)
                if outcome.became_visible:
                    for listener in listeners:
                        listener("insert", delta.fact)
                if has_firings:
                    if outcome.became_visible:
                        pending[slot] = (Delta(DELETE, replaced), delta)
                    else:  # pragma: no cover - insert with key always visible
                        pending[slot] = (Delta(DELETE, replaced),)
            elif outcome.became_visible:
                for listener in listeners:
                    listener("insert", delta.fact)
                if has_firings:
                    pending[slot] = (delta,)
        elif action == "delete":
            outcome = delete(delta.fact.values)
            if outcome.became_invisible:
                for listener in listeners:
                    listener(DELETE, delta.fact)
                if has_firings:
                    pending[slot] = (delta,)
        # REFRESH without an annotation policy is a no-op (the policy case
        # never reaches the columnar evaluator).
    if not has_firings:
        return None
    # Convert the per-slot fire tuples into work-list + buffer form.
    fire = []
    fire_append = fire.append
    for slot, _delta in items:
        fires = pending[slot]
        if fires is None:
            continue
        buffers = []
        for fire_delta in fires:
            buffer = []
            fire_append((len(out), fire_delta))
            out_append(buffer)
            buffers.append(buffer)
        pending[slot] = buffers
    return fire


def process_window(engine, window: List[Any], tracer=None) -> None:
    """Evaluate one drained window of the delta queue (see module doc)."""
    engine.stats["deltas_processed"] += len(window)
    counters = engine.columnar_counters
    counters["windows"] += 1
    counters["deltas"] += len(window)
    infos = engine._columnar_info
    n = len(window)
    start = 0
    while start < n:
        # ---- segment: conflict-free regrouping by predicate ---- #
        blocks: Dict[str, ColumnBlock] = {}
        appends: Dict[str, Any] = {}
        appends_get = appends.get
        order: List[str] = []
        seg_reads: set = set()
        seg_writes: set = set()
        index = start
        slot = 0
        while index < n:
            delta = window[index]
            name = delta.fact.name
            append = appends_get(name)
            if append is None:
                info = infos.get(name)
                if info is None:
                    info = predicate_info(engine, name)
                if order and (
                    name in seg_reads or not seg_writes.isdisjoint(info.reads)
                ):
                    break  # conflict: close the segment before this delta
                block = ColumnBlock(info)
                blocks[name] = block
                appends[name] = append = block.items.append
                order.append(name)
                seg_reads |= info.reads
                if not info.is_event:
                    seg_writes.add(name)
            append((slot, delta))
            slot += 1
            index += 1
        width = slot
        start = index
        counters["segments"] += 1
        #: per-slot outcome: None | tuple of deltas to fire | _Ready list
        pending: List[Any] = [None] * width

        # ---- apply phase (fire work lists built alongside) ---- #
        out: List[List[Any]] = []
        out_append = out.append
        fire_lists: List[Tuple[ColumnBlock, List[Tuple[int, Any]]]] = []
        for name in order:
            block = blocks[name]
            mode = block.info.mode
            if mode == EVENT:
                counters["event_deltas"] += len(block.items)
                if block.info.firings:
                    items = []
                    items_append = items.append
                    for slot, delta in block.items:
                        buffer: List[Any] = []
                        items_append((len(out), delta))
                        out_append(buffer)
                        pending[slot] = (buffer,)
                    fire_lists.append((block, items))
            elif mode == VECTOR:
                counters["vector_deltas"] += len(block.items)
                items = _apply_vector_block(engine, block, pending, out)
                if items:
                    fire_lists.append((block, items))
            else:
                _run_sequential_block(engine, block, pending)
                counters["sequential_deltas"] += len(block.items)

        # ---- fire phase: batch kernels over per-predicate items ---- #
        for block, items in fire_lists:
            name = block.info.name
            firings = block.info.firings
            kernels = block.info.kernels
            for position, firing in enumerate(firings):
                kernel = kernels[position]
                if tracer is not None:
                    with tracer.span(
                        "engine.columnar.kernel",
                        cat="engine",
                        host=engine.address,
                        predicate=name,
                        rule=firing.rule.label,
                        deltas=len(items),
                        vectorized=kernel is not None,
                    ):
                        if kernel is not None and (
                            kernel(firing.plan, engine, items, out)
                            is not GENERIC_FALLBACK
                        ):
                            counters["kernel_batches"] += 1
                        else:
                            counters["generic_batches"] += 1
                            run_generic_firing(engine, firing, items, out)
                elif kernel is not None and (
                    kernel(firing.plan, engine, items, out)
                    is not GENERIC_FALLBACK
                ):
                    counters["kernel_batches"] += 1
                else:
                    counters["generic_batches"] += 1
                    run_generic_firing(engine, firing, items, out)

        # ---- replay: emissions in exact per-delta, per-firing order ---- #
        queue_append = engine._queue.append
        send = engine._send
        for entry in pending:
            if entry is None:
                continue
            if entry.__class__ is _Ready:
                for emission in entry:
                    if emission.__class__ is tuple:
                        send(emission[0], emission[1])
                    else:
                        queue_append(emission)
            else:
                for buffer in entry:
                    for emission in buffer:
                        if emission.__class__ is tuple:
                            send(emission[0], emission[1])
                        else:
                            queue_append(emission)


# ---------------------------------------------------------------------- #
# EXPLAIN support
# ---------------------------------------------------------------------- #
def describe_kernel(plan: CompiledDeltaPlan) -> List[str]:
    """Human-readable kernel sequence for one plan (``\\explain`` output)."""
    if plan.rule.is_aggregate_rule:
        if plan.steps or batch_kernel_for(plan) is None:
            return [
                "per-delta fallback: aggregate plan outside the generated-"
                "kernel subset (emissions still buffered + replayed in order)"
            ]
        return [
            "batch kernel: selection vector over trigger column block "
            "-> grouped aggregate state transitions -> ordered "
            "retract/emit pairs"
        ]
    if len(plan.steps) >= 2:
        return [
            f"per-delta fallback: {len(plan.steps)}-step plan re-costs "
            "against live cardinalities (staleness checks pin per-delta "
            "ordering)"
        ]
    kernel = batch_kernel_for(plan)
    if kernel is None:
        return [
            "per-delta fallback: plan uses expression arguments or pushed-"
            "down literal prefixes outside the generated-kernel subset"
        ]
    if not plan.steps:
        return [
            "batch kernel: selection vector over trigger column block "
            "-> vectorized literal/VID evaluation -> ordered emission"
        ]
    step = plan.steps[0]
    if step.index_positions:
        build = (
            f"build side {step.atom.name}(hash index on positions "
            f"{list(step.index_positions)})"
        )
        probe = "probe_many bulk lookup over frozen key column"
    else:
        build = f"build side {step.atom.name}(full fragment, materialized once)"
        probe = "nested scan per selected delta"
    return [
        f"batch kernel: selection vector + key column -> {build} -> "
        f"{probe} -> ordered emission"
    ]
