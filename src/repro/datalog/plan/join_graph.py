"""Join graph over a rule's body atoms.

The join graph has one node per body atom and an edge between two atoms for
every variable they share.  The optimizer walks this graph outward from the
delta trigger atom: joining along an edge means the next table lookup is
constrained by already-bound variables, while jumping to a disconnected
atom is a cross product.  The graph is also the natural place to answer
"which variables become bound when I add this atom" questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .normalize import NormalizedRule

__all__ = ["JoinEdge", "JoinGraph", "construct_join_graph"]


@dataclass(frozen=True)
class JoinEdge:
    """An undirected edge: two body atoms sharing one or more variables."""

    left: int
    right: int
    variables: FrozenSet[str]


class JoinGraph:
    """Shared-variable graph over the body atoms of one normalized rule."""

    def __init__(self, normalized: NormalizedRule, edges: Iterable[JoinEdge]):
        self.normalized = normalized
        self.edges: Tuple[JoinEdge, ...] = tuple(edges)
        self._adjacency: Dict[int, Set[int]] = {
            signature.position: set() for signature in normalized.atoms
        }
        self._shared: Dict[Tuple[int, int], FrozenSet[str]] = {}
        for edge in self.edges:
            self._adjacency[edge.left].add(edge.right)
            self._adjacency[edge.right].add(edge.left)
            key = (min(edge.left, edge.right), max(edge.left, edge.right))
            self._shared[key] = edge.variables

    @property
    def node_count(self) -> int:
        return len(self._adjacency)

    def neighbors(self, position: int) -> FrozenSet[int]:
        return frozenset(self._adjacency[position])

    def shared_variables(self, left: int, right: int) -> FrozenSet[str]:
        """Variables shared by the two atoms (empty when not adjacent)."""
        key = (min(left, right), max(left, right))
        return self._shared.get(key, frozenset())

    def is_connected_to(self, position: int, bound_positions: Iterable[int]) -> bool:
        """True when *position* shares a variable with any bound atom."""
        neighbors = self._adjacency[position]
        return any(bound in neighbors for bound in bound_positions)

    def is_connected(self) -> bool:
        """True when the whole body is one join component (no cross product)."""
        return len(self.components()) <= 1

    def components(self) -> List[FrozenSet[int]]:
        """Connected components, each a frozenset of atom positions."""
        remaining = set(self._adjacency)
        result: List[FrozenSet[int]] = []
        while remaining:
            start = min(remaining)
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            result.append(frozenset(seen))
            remaining -= seen
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JoinGraph(nodes={self.node_count}, edges={len(self.edges)})"


def construct_join_graph(normalized: NormalizedRule) -> JoinGraph:
    """Build the shared-variable join graph for *normalized*."""
    edges: List[JoinEdge] = []
    atoms = normalized.atoms
    for i in range(len(atoms)):
        for j in range(i + 1, len(atoms)):
            shared = atoms[i].variables & atoms[j].variables
            if shared:
                edges.append(
                    JoinEdge(
                        left=atoms[i].position,
                        right=atoms[j].position,
                        variables=frozenset(shared),
                    )
                )
    return JoinGraph(normalized, edges)
