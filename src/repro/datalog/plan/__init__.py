"""Cost-based rule planner and compiled join subsystem.

This package turns NDlog rules into compiled per-(rule, delta-position)
evaluation plans:

* :mod:`~repro.datalog.plan.normalize` — structural view of a rule's body;
* :mod:`~repro.datalog.plan.join_graph` — shared-variable graph over atoms;
* :mod:`~repro.datalog.plan.cost` — live-cardinality cost model;
* :mod:`~repro.datalog.plan.optimizer` — greedy join-order selection;
* :mod:`~repro.datalog.plan.indexes` — planner-selected secondary indexes;
* :mod:`~repro.datalog.plan.compiler` — executable compiled plans;
* :mod:`~repro.datalog.plan.columnar` — vectorized batch kernels over
  column blocks (the ``pipeline="columnar"`` evaluation core);
* :mod:`~repro.datalog.plan.explain` — human-readable plan rendering.

The subsystem sits entirely behind :class:`~repro.datalog.engine.NDlogEngine`
(``planner="greedy"`` enables it, ``planner="naive"`` keeps the unoptimized
left-to-right nested-loop strategy for comparison); plans never change what
a rule derives, only how many tuples are scanned deriving it.
"""

from .columnar import ColumnBlock, batch_kernel_for, describe_kernel
from .compiled_exec import compile_term
from .compiler import CompiledDeltaPlan, CompiledStep, LookupSpec, PlanCompiler
from .cost import CatalogStatistics, CostEstimate, CostModel, DEFAULT_SELECTIVITY
from .explain import explain_plan, explain_plans
from .indexes import IndexManager
from .join_graph import JoinEdge, JoinGraph, construct_join_graph
from .normalize import AtomSignature, LiteralInfo, NormalizedRule, normalize_rule
from .optimizer import GreedyOptimizer, JoinOrder, OrderedStep

__all__ = [
    "AtomSignature",
    "CatalogStatistics",
    "ColumnBlock",
    "CompiledDeltaPlan",
    "CompiledStep",
    "CostEstimate",
    "CostModel",
    "DEFAULT_SELECTIVITY",
    "GreedyOptimizer",
    "IndexManager",
    "JoinEdge",
    "JoinGraph",
    "JoinOrder",
    "LiteralInfo",
    "LookupSpec",
    "NormalizedRule",
    "OrderedStep",
    "batch_kernel_for",
    "compile_term",
    "construct_join_graph",
    "describe_kernel",
    "explain_plan",
    "explain_plans",
    "normalize_rule",
]
