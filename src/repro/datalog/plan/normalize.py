"""Rule normalization for the planner.

The planner does not work on :class:`~repro.datalog.ast.Rule` objects
directly: it first *normalizes* a rule into a shape that makes the
information a join optimizer needs explicit:

* per body atom, which argument positions are bound to which variables
  (:attr:`AtomSignature.var_positions`), which hold constants
  (:attr:`AtomSignature.const_positions`) and which hold compound
  expressions (:attr:`AtomSignature.expr_positions`);
* the rule's non-atom literals (assignments and conditions) in body order,
  each with the set of variables it reads and — for assignments — the
  variable it binds.

Normalization is purely structural: it never changes the meaning of the
rule, so every plan built from a :class:`NormalizedRule` enumerates exactly
the same matches as the naive left-to-right evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..ast import Assignment, Atom, Condition, Rule
from ..terms import Constant, Variable

__all__ = ["AtomSignature", "LiteralInfo", "NormalizedRule", "normalize_rule"]


@dataclass(frozen=True)
class AtomSignature:
    """Planner view of one body atom.

    ``position`` is the atom's index within ``rule.body_atoms`` (the same
    index the engine uses as a delta trigger position).
    """

    atom: Atom
    position: int
    #: variable name -> argument positions where it occurs (non-wildcard).
    var_positions: Dict[str, Tuple[int, ...]]
    #: argument position -> constant value.
    const_positions: Dict[int, object]
    #: argument position -> variables read by the compound term stored there.
    expr_positions: Dict[int, FrozenSet[str]]

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset(self.var_positions)

    @property
    def name(self) -> str:
        return self.atom.name


@dataclass(frozen=True)
class LiteralInfo:
    """One non-atom body literal (assignment or condition) in body order."""

    literal: object  # Assignment | Condition
    #: variables the literal's expression reads.
    reads: FrozenSet[str]
    #: variable an assignment binds (None for conditions).
    binds: Optional[str]

    @property
    def is_assignment(self) -> bool:
        return self.binds is not None


@dataclass(frozen=True)
class NormalizedRule:
    """A rule decomposed into the pieces the planner consumes."""

    rule: Rule
    atoms: Tuple[AtomSignature, ...]
    literals: Tuple[LiteralInfo, ...]

    @property
    def atom_count(self) -> int:
        return len(self.atoms)

    def signature(self, position: int) -> AtomSignature:
        return self.atoms[position]

    def atom_variables(self) -> FrozenSet[str]:
        """Every variable bound by at least one body atom."""
        names: set = set()
        for signature in self.atoms:
            names.update(signature.var_positions)
        return frozenset(names)

    def evaluable_literal_prefix(self, atom_bound: FrozenSet[str]) -> int:
        """How many leading literals are evaluable given *atom_bound* vars.

        Literals must be applied in body order (assignments may overwrite
        variables), so the prefix stops at the first literal whose read set
        is not covered by the atom-bound variables plus the variables bound
        by earlier literals in the prefix.
        """
        available = set(atom_bound)
        count = 0
        for info in self.literals:
            if not info.reads <= available:
                break
            if info.binds is not None:
                available.add(info.binds)
            count += 1
        return count


def _atom_signature(atom: Atom, position: int) -> AtomSignature:
    var_positions: Dict[str, list] = {}
    const_positions: Dict[int, object] = {}
    expr_positions: Dict[int, FrozenSet[str]] = {}
    for index, arg in enumerate(atom.args):
        if isinstance(arg, Variable):
            if not arg.is_wildcard:
                var_positions.setdefault(arg.name, []).append(index)
        elif isinstance(arg, Constant):
            const_positions[index] = arg.value
        else:
            expr_positions[index] = frozenset(arg.variables())
    return AtomSignature(
        atom=atom,
        position=position,
        var_positions={name: tuple(ps) for name, ps in var_positions.items()},
        const_positions=const_positions,
        expr_positions=expr_positions,
    )


def normalize_rule(rule: Rule) -> NormalizedRule:
    """Build the planner's normalized view of *rule*."""
    atoms = tuple(
        _atom_signature(atom, position)
        for position, atom in enumerate(rule.body_atoms)
    )
    literals = []
    for literal in rule.body:
        if isinstance(literal, Atom):
            continue
        if isinstance(literal, Assignment):
            literals.append(
                LiteralInfo(
                    literal=literal,
                    reads=frozenset(literal.expression.variables()),
                    binds=literal.variable.name,
                )
            )
        elif isinstance(literal, Condition):
            literals.append(
                LiteralInfo(
                    literal=literal,
                    reads=frozenset(literal.expression.variables()),
                    binds=None,
                )
            )
    return NormalizedRule(rule=rule, atoms=atoms, literals=tuple(literals))
