"""Incremental aggregate maintenance for NDlog aggregate rules.

An aggregate rule such as ``sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).``
groups its input relation on the non-aggregate head attributes (here
``S, D``) and maintains one output tuple per group whose aggregate position
holds ``min(C)`` over the group's members.

The paper restricts the provenance rewrite to MIN and MAX (Section 4.2.2);
the runtime nonetheless supports COUNT, SUM and AGGLIST because the
provenance *query* programs in Section 5 rely on ``COUNT<*>`` and
``AGGLIST<RID, RLoc>``.

Each :class:`AggregateState` instance tracks one group and supports
incremental insertion and deletion of contributing values, reporting the new
aggregate value after every change so the engine can emit the corresponding
delete+insert pair for the derived tuple.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from .errors import EvaluationError

__all__ = ["AggregateState", "create_aggregate_state", "SUPPORTED_AGGREGATES"]

SUPPORTED_AGGREGATES = ("min", "max", "count", "sum", "agglist")


class AggregateState:
    """Incrementally maintained aggregate over a multiset of values."""

    def __init__(self, func: str):
        if func not in SUPPORTED_AGGREGATES:
            raise EvaluationError(f"unsupported aggregate function {func!r}")
        self.func = func
        self._values: Counter = Counter()
        self._count = 0
        self._sum: Any = 0
        # Cached MIN/MAX winner.  ``None`` means "recompute lazily": without
        # it every current() pays an O(group) scan, which turns the hot
        # best-path maintenance into quadratic work as groups grow.
        self._best: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, value: Any) -> None:
        """Record one occurrence of *value* in the group."""
        key = self._normalize(value)
        self._values[key] += 1
        self._count += 1
        func = self.func
        if func == "sum":
            self._sum += value
        elif func == "min":
            best = self._best
            if best is not None and key < best:
                self._best = key
        elif func == "max":
            best = self._best
            if best is not None and key > best:
                self._best = key

    def delete(self, value: Any) -> None:
        """Remove one occurrence of *value*; ignores values never inserted."""
        key = self._normalize(value)
        if self._values[key] <= 0:
            return
        self._values[key] -= 1
        if self._values[key] == 0:
            del self._values[key]
            if key == self._best:
                self._best = None  # winner left: recompute on next current()
        self._count -= 1
        if self.func == "sum":
            self._sum -= value

    @staticmethod
    def _normalize(value: Any) -> Hashable:
        if isinstance(value, list):
            return tuple(value)
        return value

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        return self._count == 0

    def current(self) -> Any:
        """Return the aggregate's current value.

        Raises :class:`EvaluationError` when the group is empty and the
        aggregate has no natural identity (MIN / MAX / AGGLIST); the engine
        deletes the derived tuple instead of calling this.
        """
        if self.func == "count":
            return self._count
        if self.func == "sum":
            return self._sum
        if self.is_empty:
            raise EvaluationError(f"aggregate {self.func} over an empty group")
        if self.func == "min":
            best = self._best
            if best is None:
                best = min(self._values)
                self._best = best
            return best
        if self.func == "max":
            best = self._best
            if best is None:
                best = max(self._values)
                self._best = best
            return best
        if self.func == "agglist":
            items: List[Any] = []
            for value, multiplicity in self._values.items():
                entry = list(value) if isinstance(value, tuple) else value
                items.extend([entry] * multiplicity)
            return items
        raise EvaluationError(f"unsupported aggregate function {self.func!r}")

    def contributing_values(self) -> List[Any]:
        """All values currently in the group (with multiplicity)."""
        values: List[Any] = []
        for value, multiplicity in self._values.items():
            values.extend([value] * multiplicity)
        return values

    def argmin_like_value(self) -> Optional[Any]:
        """For MIN / MAX, the value that currently determines the aggregate.

        The provenance rewrite uses this to attribute the derived tuple's
        provenance to the winning input tuple only (Section 4.2.2).
        Returns ``None`` for other aggregate kinds or empty groups.
        """
        if self.is_empty or self.func not in ("min", "max"):
            return None
        return self.current()

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateState({self.func}, n={self._count})"


def create_aggregate_state(func: str) -> AggregateState:
    """Factory for :class:`AggregateState` (kept for symmetry with tests)."""
    return AggregateState(func)
