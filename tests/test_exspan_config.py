"""ExspanConfig validation and the legacy-kwargs deprecation shim.

The consolidation contract: every constructor knob lives on one frozen,
validated ``ExspanConfig``; old-style keyword construction still works
through a shim that warns but builds a bit-identical network.
"""

import dataclasses

import pytest

from repro.core.api import ExspanNetwork
from repro.core.config import ExspanConfig
from repro.core.errors import ProvenanceError
from repro.core.modes import ProvenanceMode
from repro.net.topology import ring_topology
from repro.protocols.mincost import mincost_program


def _fixpoint_state(network):
    network.seed_links()
    network.run_to_fixpoint()
    return (
        sorted(map(tuple, (row for _, row in network.tuples("bestPathCost")))),
        network.stats_snapshot(),
        network.now,
    )


class TestValidation:
    def test_defaults(self):
        config = ExspanConfig()
        assert config.mode is ProvenanceMode.REFERENCE
        assert config.seed == 0
        assert config.query_coalescing is True

    def test_frozen(self):
        config = ExspanConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 7

    def test_mode_coercion_from_string(self):
        assert ExspanConfig(mode="none").mode is ProvenanceMode.NONE
        assert ExspanConfig(mode="ref").mode is ProvenanceMode.REFERENCE
        assert ExspanConfig(mode="reference").mode is ProvenanceMode.REFERENCE
        assert ExspanConfig(mode="value").mode is ProvenanceMode.VALUE
        assert ExspanConfig(mode="centralized").mode is ProvenanceMode.CENTRALIZED

    def test_bad_mode_rejected(self):
        with pytest.raises(ProvenanceError):
            ExspanConfig(mode="bogus")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_cost": "cheap"},
            {"value_policy": "magic"},
            {"planner": "quantum"},
            {"pipeline": "hyperloop"},
            {"query_cache_capacity": -1},
            {"compact_min_cancelled": -2},
            {"compact_ratio": 0},
            {"query_coalescing": "yes"},
            {"local_addresses": ("n0",)},  # requires shard_map too
        ],
    )
    def test_invalid_combinations_rejected(self, kwargs):
        with pytest.raises(ProvenanceError):
            ExspanConfig(**kwargs)

    def test_round_trip_through_dict(self):
        config = ExspanConfig(mode="value", seed=3, planner="greedy", query_batching=False)
        clone = ExspanConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ProvenanceError):
            ExspanConfig.from_dict({"mode": "ref", "warp_drive": True})

    def test_replace(self):
        config = ExspanConfig(seed=1)
        assert config.replace(seed=9).seed == 9
        assert config.seed == 1


class TestDeprecationShim:
    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="ExspanConfig"):
            ExspanNetwork(ring_topology(4, seed=0), mincost_program(), seed=0)

    def test_positional_mode_warns(self):
        with pytest.warns(DeprecationWarning):
            ExspanNetwork(ring_topology(4, seed=0), mincost_program(), ProvenanceMode.NONE)

    def test_config_plus_kwargs_is_an_error(self):
        with pytest.raises(TypeError):
            ExspanNetwork(
                ring_topology(4, seed=0),
                mincost_program(),
                config=ExspanConfig(),
                seed=1,
            )

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError):
            ExspanNetwork(ring_topology(4, seed=0), mincost_program(), warp_drive=True)

    def test_legacy_construction_bit_identical(self):
        """Old-kwarg construction must behave exactly like ExspanConfig."""
        with pytest.warns(DeprecationWarning):
            legacy = ExspanNetwork(
                ring_topology(5, seed=0),
                mincost_program(),
                mode=ProvenanceMode.REFERENCE,
                seed=0,
                planner="greedy",
            )
        modern = ExspanNetwork(
            ring_topology(5, seed=0),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE, seed=0, planner="greedy"),
        )
        assert legacy.config == modern.config
        assert _fixpoint_state(legacy) == _fixpoint_state(modern)
