"""Tests for the scenario registry, parallel orchestrator and regression gate."""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.experiments import (
    SCENARIOS,
    Scenario,
    TrialSpec,
    assemble_figure,
    get_scenario,
    register,
    run_figure,
    scenario_for_figure,
    unregister,
)
from repro.experiments.__main__ import main as cli_main
from repro.experiments.figures import figure_17_testbed_fixpoint
from repro.experiments.orchestrator import (
    SCHEMA_VERSION,
    artifact_path,
    canonical_artifact_bytes,
    compare,
    dump_artifact,
    load_artifact,
    run,
    strict_compare,
    trial_fingerprint,
    wall_clock_report,
)
from repro.experiments.scenarios import run_trial_spec
from repro.experiments.trials import TRIAL_FUNCTIONS


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_every_paper_figure_has_a_scenario(self):
        for figure_number in range(6, 18):
            scenario = scenario_for_figure(str(figure_number))
            assert scenario.figure == str(figure_number)
            assert scenario.trials("quick"), scenario.name
            assert scenario.trials("paper"), scenario.name

    def test_registry_only_scenarios_exist(self):
        for name in ("churn_intensity", "planner_ablation"):
            scenario = get_scenario(name)
            assert scenario.figure is None
            assert scenario.trials("quick")

    def test_expansion_is_deterministic_and_json_safe(self):
        for scenario in SCENARIOS.values():
            first = scenario.trials("quick")
            second = scenario.trials("quick")
            assert first == second
            for spec in first:
                assert spec.fn in TRIAL_FUNCTIONS
                json.dumps(spec.kwargs)  # kwargs must be artifact-serializable

    def test_trial_ids_are_unique_within_a_scenario(self):
        for scenario in SCENARIOS.values():
            ids = [spec.trial_id for spec in scenario.trials("quick")]
            assert len(ids) == len(set(ids)), scenario.name

    def test_params_scales_and_overrides(self):
        scenario = get_scenario("fig17_testbed_fixpoint")
        assert scenario.params("quick")["sizes"] != scenario.params("paper")["sizes"]
        assert scenario.params("quick", {"sizes": (6,)})["sizes"] == (6,)
        with pytest.raises(ValueError):
            scenario.params("huge")

    def test_unknown_override_keys_raise(self):
        scenario = get_scenario("fig09_mincost_churn")
        with pytest.raises(TypeError, match="links_per_rounds"):
            scenario.params("quick", {"links_per_rounds": 8})  # typo
        from repro.experiments.figures import figure_09_mincost_churn

        with pytest.raises(TypeError):
            figure_09_mincost_churn(links_per_rounds=8)

    def test_override_keys_match_what_expansion_consumes(self):
        # Mode-sweeping scenarios take modes/planner overrides...
        specs = get_scenario("fig09_mincost_churn").trials(
            "quick", {"modes": ("none",), "planner": "naive"}
        )
        assert [spec.kwargs["mode"] for spec in specs] == ["none"]
        assert all(spec.kwargs["planner"] == "naive" for spec in specs)
        # ...but query-workload scenarios reject them instead of silently
        # dropping them (their trials have no modes/planner knob).
        for name in ("fig11_caching_bandwidth", "fig13_traversal_bandwidth"):
            with pytest.raises(TypeError, match="planner"):
                get_scenario(name).params("quick", {"planner": "naive"})

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("planner_ablation")
        with pytest.raises(ValueError):
            register(scenario)

    def test_unknown_lookups_raise(self):
        with pytest.raises(KeyError):
            get_scenario("no_such_scenario")
        with pytest.raises(KeyError):
            scenario_for_figure("99")

    def test_run_figure_matches_wrapper(self):
        direct = run_figure("fig17_testbed_fixpoint", sizes=(6,))
        wrapped = figure_17_testbed_fixpoint(sizes=(6,))
        assert direct.render() == wrapped.render()


# ---------------------------------------------------------------------- #
# orchestrator runs
# ---------------------------------------------------------------------- #
@pytest.fixture
def tiny_scenario():
    """A registry-registered scenario small enough to run in tests."""
    name = "tmp_tiny_fixpoint"

    def expand(params):
        return [
            TrialSpec(
                scenario=name,
                trial_id=f"size={size}/mode={mode}",
                fn="testbed_fixpoint",
                kwargs={"size": size, "mode": mode, "seed": params["seed"]},
            )
            for size in params["sizes"]
            for mode in ("ref", "none")
        ]

    scenario = Scenario(
        name=name,
        title="tiny fixpoint sweep",
        x_label="Number of Nodes",
        y_label="Fixpoint Latency (seconds)",
        expand=expand,
        quick={"sizes": (4, 6), "seed": 0},
    )
    register(scenario)
    yield scenario
    unregister(name)


def _artifact_bytes(results_dir, scenario_name):
    """Canonical artifact bytes: advisory wall-clock stripped.

    Wall-clock differs between any two executions by nature; every other
    byte must be identical, which is exactly what canonical_artifact_bytes
    compares.
    """
    return canonical_artifact_bytes(artifact_path(str(results_dir), scenario_name))


class TestOrchestratorRun:
    def test_parallel_matches_serial_byte_for_byte(self, tiny_scenario, tmp_path):
        serial = run([tiny_scenario.name], workers=1, results_dir=str(tmp_path / "s"))
        parallel = run([tiny_scenario.name], workers=2, results_dir=str(tmp_path / "p"))
        assert serial.executed == parallel.executed == 4
        assert _artifact_bytes(tmp_path / "s", tiny_scenario.name) == _artifact_bytes(
            tmp_path / "p", tiny_scenario.name
        )
        assert strict_compare(str(tmp_path / "s"), str(tmp_path / "p")) == []

    def test_artifact_schema(self, tiny_scenario, tmp_path):
        run([tiny_scenario.name], results_dir=str(tmp_path))
        artifact = load_artifact(artifact_path(str(tmp_path), tiny_scenario.name))
        assert artifact is not None
        assert artifact["schema"] == SCHEMA_VERSION
        assert artifact["scenario"] == tiny_scenario.name
        assert artifact["scale"] == "quick"
        assert len(artifact["trials"]) == 4
        for trial in artifact["trials"]:
            assert trial["fingerprint"] == trial_fingerprint(trial["fn"], trial["kwargs"])
            assert set(trial["result"]) == {"series", "notes", "planner", "traffic"}
        figure = assemble_figure(
            tiny_scenario, [trial["result"] for trial in artifact["trials"]]
        )
        assert figure.labels() == ["Ref-based Prov.", "No Prov."]

    def test_resume_skips_fresh_trials(self, tiny_scenario, tmp_path):
        first = run([tiny_scenario.name], results_dir=str(tmp_path))
        assert (first.executed, first.skipped) == (4, 0)
        before = _artifact_bytes(tmp_path, tiny_scenario.name)
        second = run([tiny_scenario.name], results_dir=str(tmp_path))
        assert (second.executed, second.skipped) == (0, 4)
        assert _artifact_bytes(tmp_path, tiny_scenario.name) == before
        forced = run([tiny_scenario.name], results_dir=str(tmp_path), resume=False)
        assert (forced.executed, forced.skipped) == (4, 0)
        assert _artifact_bytes(tmp_path, tiny_scenario.name) == before

    def test_stale_fingerprints_rerun(self, tiny_scenario, tmp_path):
        run([tiny_scenario.name], results_dir=str(tmp_path))
        path = artifact_path(str(tmp_path), tiny_scenario.name)
        artifact = load_artifact(path)
        artifact["trials"][0]["fingerprint"] = "0" * 16
        dump_artifact(path, artifact)
        repaired = run([tiny_scenario.name], results_dir=str(tmp_path))
        assert (repaired.executed, repaired.skipped) == (1, 3)

    def test_planner_override_changes_fingerprints(self, tiny_scenario, tmp_path):
        default = run([tiny_scenario.name], results_dir=str(tmp_path))
        assert default.executed == 4
        forced = run([tiny_scenario.name], results_dir=str(tmp_path), planner="greedy")
        assert (forced.executed, forced.skipped) == (4, 0)
        artifact = load_artifact(artifact_path(str(tmp_path), tiny_scenario.name))
        assert artifact["params"]["planner"] == "greedy"
        assert all(t["kwargs"]["planner"] == "greedy" for t in artifact["trials"])

    def test_planner_override_skips_query_trials(self, tmp_path):
        # Figure-12 trials run query workloads on a fixed reference-mode
        # network and take no planner kwarg; forcing a planner must not
        # crash them (it simply does not apply).
        report = run(["12"], results_dir=str(tmp_path), planner="greedy")
        assert report.executed == 2
        artifact = load_artifact(artifact_path(str(tmp_path), "fig12_caching_latency"))
        assert all("planner" not in t["kwargs"] for t in artifact["trials"])
        # The artifact must not claim a planner that never applied.
        assert "planner" not in artifact["params"]

    def test_figure_number_selector(self, tiny_scenario, tmp_path):
        report = run(["17"], results_dir=str(tmp_path))
        assert report.scenarios == ["fig17_testbed_fixpoint"]

    def test_trial_functions_are_deterministic(self):
        spec = TrialSpec("x", "t", "testbed_fixpoint", {"size": 5, "mode": "none"})
        assert run_trial_spec(spec) == run_trial_spec(spec)


# ---------------------------------------------------------------------- #
# compare / regression gate
# ---------------------------------------------------------------------- #
def _fake_artifact(scenario="fake_scenario", tuples_scanned=1000, total_bytes=5000):
    return {
        "schema": SCHEMA_VERSION,
        "generator": "test",
        "scenario": scenario,
        "figure": None,
        "title": "fake",
        "x_label": "x",
        "y_label": "y",
        "scale": "quick",
        "params": {},
        "trials": [
            {
                "id": "only",
                "fn": "testbed_fixpoint",
                "kwargs": {},
                "fingerprint": "f" * 16,
                "result": {
                    "series": {"s": [[1, 1.0]]},
                    "notes": {},
                    "planner": {"tuples_scanned": tuples_scanned, "full_scans": 100},
                    "traffic": {"total_bytes": total_bytes, "total_messages": 40},
                },
            }
        ],
    }


class TestCompare:
    def _write(self, directory, artifact):
        os.makedirs(directory, exist_ok=True)
        dump_artifact(
            artifact_path(str(directory), artifact["scenario"]), artifact
        )

    def test_identical_artifacts_pass(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact())
        self._write(tmp_path / "b", _fake_artifact())
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report.ok and report.checked == 4
        assert "OK" in report.render()

    def test_injected_regression_fails(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact(tuples_scanned=1000))
        self._write(tmp_path / "b", _fake_artifact(tuples_scanned=1200))
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"), threshold=0.05)
        assert not report.ok
        assert [r.key for r in report.regressions] == ["tuples_scanned"]
        assert "REGRESSIONS" in report.render()

    def test_improvement_is_not_a_failure(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact(tuples_scanned=1000))
        self._write(tmp_path / "b", _fake_artifact(tuples_scanned=500))
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report.ok
        assert [r.key for r in report.improvements] == ["tuples_scanned"]

    def test_min_delta_tolerance_is_opt_in(self, tmp_path):
        # Counters are deterministic, so the default gate flags any growth
        # past the relative threshold; min_delta exists for callers who
        # knowingly tolerate small absolute drift.
        self._write(tmp_path / "a", _fake_artifact(tuples_scanned=10))
        self._write(tmp_path / "b", _fake_artifact(tuples_scanned=12))
        assert not compare(str(tmp_path / "a"), str(tmp_path / "b")).ok
        assert compare(str(tmp_path / "a"), str(tmp_path / "b"), min_delta=16).ok

    def test_unreadable_baseline_fails_closed(self, tmp_path):
        os.makedirs(tmp_path / "a", exist_ok=True)
        with open(tmp_path / "a" / "BENCH_broken.json", "w") as handle:
            handle.write("{not json")
        self._write(tmp_path / "b", _fake_artifact())
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert not report.ok
        assert report.regressions[0].key == "unreadable or stale-schema baseline"

    def test_baseline_with_no_trials_fails_closed(self, tmp_path):
        empty = _fake_artifact()
        empty["trials"] = []
        self._write(tmp_path / "a", empty)
        self._write(tmp_path / "b", _fake_artifact())
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert not report.ok
        assert report.regressions[0].key == "baseline has no trials"

    def test_empty_baseline_directory_fails_closed(self, tmp_path):
        os.makedirs(tmp_path / "a", exist_ok=True)
        self._write(tmp_path / "b", _fake_artifact())
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert not report.ok
        assert "no baseline artifacts" in report.regressions[0].key
        assert strict_compare(str(tmp_path / "empty1"), str(tmp_path / "empty2"))

    def test_strict_compare_flags_candidate_only_artifacts(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact())
        self._write(tmp_path / "b", _fake_artifact())
        self._write(tmp_path / "b", _fake_artifact(scenario="extra_only"))
        assert strict_compare(str(tmp_path / "a"), str(tmp_path / "b")) == [
            "BENCH_extra_only.json"
        ]

    def test_vanished_counter_fails(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact())
        gutted = _fake_artifact()
        del gutted["trials"][0]["result"]["planner"]["tuples_scanned"]
        self._write(tmp_path / "b", gutted)
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert not report.ok
        assert [r.key for r in report.regressions] == ["tuples_scanned missing"]

    def test_missing_candidate_artifact_fails(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact())
        os.makedirs(tmp_path / "b", exist_ok=True)
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert not report.ok
        assert report.regressions[0].key == "artifact missing"

    def test_missing_trial_fails(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact())
        gutted = _fake_artifact()
        gutted["trials"] = []
        self._write(tmp_path / "b", gutted)
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert not report.ok
        assert report.regressions[0].key == "trial missing"

    def test_new_candidate_scenario_is_only_a_note(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact())
        self._write(tmp_path / "b", _fake_artifact())
        self._write(tmp_path / "b", _fake_artifact(scenario="brand_new"))
        report = compare(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report.ok
        assert any("brand_new" in note for note in report.notes)

    def test_strict_compare_detects_byte_drift(self, tmp_path):
        self._write(tmp_path / "a", _fake_artifact())
        drifted = _fake_artifact()
        drifted["trials"][0]["result"]["series"]["s"] = [[1, 1.0000001]]
        self._write(tmp_path / "b", drifted)
        assert compare(str(tmp_path / "a"), str(tmp_path / "b")).ok
        assert strict_compare(str(tmp_path / "a"), str(tmp_path / "b"))


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06_mincost_comm" in out and "planner_ablation" in out

    def test_run_requires_selection(self, capsys):
        assert cli_main(["run"]) == 2

    def test_run_unknown_scenario_is_an_error_not_a_traceback(self, capsys):
        assert cli_main(["run", "bogus_scenario"]) == 2
        assert "error" in capsys.readouterr().out

    def test_run_and_compare_roundtrip(self, tiny_scenario, tmp_path, capsys):
        base = str(tmp_path / "base")
        cand = str(tmp_path / "cand")
        assert cli_main(["run", tiny_scenario.name, "--results-dir", base]) == 0
        assert cli_main(["run", tiny_scenario.name, "--results-dir", cand]) == 0
        assert cli_main(["compare", base, cand, "--strict"]) == 0
        artifact = load_artifact(artifact_path(cand, tiny_scenario.name))
        worse = copy.deepcopy(artifact)
        worse["trials"][0]["result"]["planner"]["tuples_scanned"] *= 10
        dump_artifact(artifact_path(cand, tiny_scenario.name), worse)
        assert cli_main(["compare", base, cand]) == 1
