"""Unit tests for the NDlog parser (repro.datalog.parser)."""

from __future__ import annotations

import pytest

from repro.datalog.ast import Assignment, Atom, Condition, Fact, Rule
from repro.datalog.errors import ParseError
from repro.datalog.parser import parse_program, parse_rule, parse_term, tokenize
from repro.datalog.terms import (
    AggregateSpec,
    BinaryOp,
    Constant,
    FunctionCall,
    Variable,
)
from repro.protocols import MINCOST_SOURCE, PACKETFORWARD_SOURCE, PATHVECTOR_SOURCE


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize('sp1 pathCost(@S,D,C) :- link(@S,D,C).')
        kinds = [token.kind for token in tokens]
        assert "deduce" in kinds
        assert tokens[0].text == "sp1"

    def test_comments_are_skipped(self):
        tokens = tokenize("// comment line\nfoo(@A).\n# another\n")
        assert [token.text for token in tokens] == ["foo", "(", "@", "A", ")", "."]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a(@X).\nb(@Y).")
        assert tokens[0].line == 1
        assert tokens[6].line == 2

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("foo(@A) $ bar.")

    def test_string_literal(self):
        tokens = tokenize('x(@A, "hello world").')
        assert any(token.kind == "string" for token in tokens)


class TestRuleParsing:
    def test_simple_rule(self):
        rule = parse_rule("sp1 pathCost(@S,D,C) :- link(@S,D,C).")
        assert rule.label == "sp1"
        assert rule.head.name == "pathCost"
        assert rule.head.location_index == 0
        assert len(rule.body_atoms) == 1

    def test_location_specifier_positions(self):
        rule = parse_rule("f1 ePacket(@Next,Src) :- ePacket(@N,Src), bestHop(@N,Next).")
        assert rule.head.location_index == 0
        assert all(atom.location_index == 0 for atom in rule.body_atoms)

    def test_location_specifier_not_first(self):
        rule = parse_rule("r1 foo(A, @B) :- bar(A, @B).")
        assert rule.head.location_index == 1

    def test_assignment_parsed(self):
        rule = parse_rule("r1 out(@S,C) :- in(@S,C1,C2), C=C1+C2.")
        assignments = rule.body_assignments
        assert len(assignments) == 1
        assert assignments[0].variable == Variable("C")
        assert isinstance(assignments[0].expression, BinaryOp)

    def test_condition_parsed(self):
        rule = parse_rule("r1 out(@S) :- in(@S,C), C<5, S!=C.")
        assert len(rule.body_conditions) == 2

    def test_equality_condition_with_double_equals(self):
        rule = parse_rule("r2 out(@N) :- in(@N,D), N==D.")
        condition = rule.body_conditions[0]
        assert isinstance(condition.expression, BinaryOp)
        assert condition.expression.op == "=="

    def test_function_call_in_assignment(self):
        rule = parse_rule('r1 out(@S,V) :- in(@S,A), V=f_sha1("link"+S+A).')
        assignment = rule.body_assignments[0]
        assert isinstance(assignment.expression, FunctionCall)

    def test_min_aggregate_in_head(self):
        rule = parse_rule("sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).")
        aggregate = rule.head.aggregate()
        assert aggregate is not None
        position, spec = aggregate
        assert position == 2
        assert spec.func == "min"
        assert spec.variables_ == ("C",)

    def test_count_star_aggregate(self):
        rule = parse_rule("c0 numChild(@X,V,COUNT<*>) :- prov(@X,V,R,L).")
        _, spec = rule.head.aggregate()
        assert spec.func == "count"
        assert spec.is_star

    def test_agglist_aggregate(self):
        rule = parse_rule("i1 pQList(@X,Q,AGGLIST<RID,RLoc>) :- prov(@X,Q,RID,RLoc).")
        _, spec = rule.head.aggregate()
        assert spec.func == "agglist"
        assert spec.variables_ == ("RID", "RLoc")

    def test_comparison_with_aggregate_like_name_not_confused(self):
        # `min` followed by `<` only forms an aggregate inside atom arguments.
        rule = parse_rule("r1 out(@S) :- in(@S,Min), Min<3.")
        assert len(rule.body_conditions) == 1

    def test_boolean_condition_function_equals_false(self):
        rule = parse_rule("pv2 p(@S,P) :- l(@S,P2), f_member(P2,S)==false, P=f_concat(S,P2).")
        condition = rule.body_conditions[0]
        assert condition.expression.op == "=="

    def test_null_constant(self):
        rule = parse_rule("e1 out(@X) :- prov(@X,V,RID,L), RID==NULL.")
        condition = rule.body_conditions[0]
        assert condition.expression.right == Constant(None)

    def test_multiple_rules_requires_parse_program(self):
        with pytest.raises(ParseError):
            parse_rule("a x(@A) :- y(@A). b z(@A) :- y(@A).")

    def test_missing_period_raises(self):
        with pytest.raises(ParseError):
            parse_rule("sp1 pathCost(@S,D,C) :- link(@S,D,C)")

    def test_string_round_trip_reparses(self):
        rule = parse_rule("sp2 pathCost(@S,D,C) :- link(@Z,S,C1), bestPathCost(@Z,D,C2), C=C1+C2.")
        reparsed = parse_rule(str(rule))
        assert reparsed.label == rule.label
        assert reparsed.head.name == rule.head.name
        assert len(reparsed.body) == len(rule.body)


class TestFactAndDeclarationParsing:
    def test_fact_with_string_and_int(self):
        program = parse_program('link(@"a", "b", 3).')
        assert len(program.facts) == 1
        fact = program.facts[0]
        assert fact.values == ("a", "b", 3)
        assert fact.location == "a"

    def test_fact_with_bare_symbol_constants(self):
        program = parse_program("link(@a, b, 3).")
        assert program.facts[0].values == ("a", "b", 3)

    def test_fact_with_non_constant_raises(self):
        with pytest.raises(ParseError):
            parse_program("link(@A, b, 3).")

    def test_materialize_declaration(self):
        program = parse_program("materialize(link, 3, keys(0, 1)).\n")
        assert len(program.declarations) == 1
        declaration = program.declarations[0]
        assert declaration.name == "link"
        assert declaration.arity == 3
        assert declaration.key_positions == (0, 1)

    def test_materialize_without_keys(self):
        program = parse_program("materialize(path, 4).")
        assert program.declarations[0].key_positions == ()

    def test_negative_number_in_fact_rejected(self):
        # -5 parses as a unary-minus expression, not a constant; facts only
        # accept constants, so the parser rejects it (negative costs do not
        # appear in the paper's programs).
        with pytest.raises(ParseError):
            parse_program("offset(@a, -5).")


class TestProgramParsing:
    def test_mincost_program_parses(self):
        program = parse_program(MINCOST_SOURCE)
        assert [rule.label for rule in program.rules] == ["sp1", "sp2", "sp3"]
        program.validate()

    def test_pathvector_program_parses(self):
        program = parse_program(PATHVECTOR_SOURCE)
        assert len(program.rules) == 5
        program.validate()

    def test_packetforward_program_parses(self):
        program = parse_program(PACKETFORWARD_SOURCE)
        assert len(program.rules) == 2
        program.validate()

    def test_relation_names_and_base_predicates(self):
        program = parse_program(MINCOST_SOURCE)
        assert "link" in program.base_predicates()
        assert "pathCost" in program.predicates_derived()
        assert set(program.relation_names()) >= {"link", "pathCost", "bestPathCost"}

    def test_rule_by_label(self):
        program = parse_program(MINCOST_SOURCE)
        assert program.rule_by_label("sp2").head.name == "pathCost"
        with pytest.raises(KeyError):
            program.rule_by_label("nope")

    def test_unexpected_token_raises(self):
        with pytest.raises(ParseError):
            parse_program(":- foo(@A).")


class TestTermParsing:
    def test_parse_arithmetic_precedence(self):
        term = parse_term("1 + 2 * 3")
        assert isinstance(term, BinaryOp)
        assert term.op == "+"
        assert term.right.op == "*"

    def test_parse_parentheses(self):
        term = parse_term("(1 + 2) * 3")
        assert term.op == "*"

    def test_parse_boolean_operators(self):
        term = parse_term("A < 3 && B > 2 || C == 1")
        assert term.op == "||"

    def test_parse_unary_minus(self):
        term = parse_term("-X")
        assert isinstance(term, type(parse_term("-Y")))
