"""Tests for topologies: the generic graph model and the paper's generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    LinkSpec,
    Topology,
    grid_topology,
    line_topology,
    ring_topology,
    transit_stub_topology,
)
from repro.net.errors import NoRouteError
from repro.net.topology import TIER_STUB, TIER_TRANSIT, TIER_TRANSIT_STUB


class TestTopologyModel:
    def test_add_link_creates_nodes(self):
        topology = Topology()
        topology.add_link("a", "b", LinkSpec(latency=0.01))
        assert topology.has_node("a")
        assert topology.has_link("a", "b")
        assert topology.has_link("b", "a")  # symmetric
        assert topology.degree("a") == 1

    def test_self_link_rejected(self):
        topology = Topology()
        with pytest.raises(ValueError):
            topology.add_link("a", "a")

    def test_remove_link(self):
        topology = Topology()
        topology.add_link("a", "b")
        assert topology.remove_link("b", "a")
        assert not topology.has_link("a", "b")
        assert not topology.remove_link("a", "b")

    def test_link_facts_emit_both_directions(self):
        topology = Topology()
        topology.add_link("a", "b", LinkSpec(cost=3))
        facts = topology.link_facts()
        assert ("a", "b", 3) in facts
        assert ("b", "a", 3) in facts
        assert len(facts) == 2

    def test_neighbors_sorted(self):
        topology = Topology()
        topology.add_link("a", "c")
        topology.add_link("a", "b")
        assert topology.neighbors("a") == ["b", "c"]

    def test_latency_between_uses_shortest_path(self):
        topology = Topology()
        topology.add_link("a", "b", LinkSpec(latency=0.010))
        topology.add_link("b", "c", LinkSpec(latency=0.010))
        topology.add_link("a", "c", LinkSpec(latency=0.050))
        assert topology.latency_between("a", "c") == pytest.approx(0.020)
        assert topology.latency_between("a", "a") == 0.0

    def test_latency_between_disconnected_raises(self):
        topology = Topology()
        topology.add_node("a")
        topology.add_node("z")
        with pytest.raises(NoRouteError):
            topology.latency_between("a", "z")

    def test_route_cache_invalidated_on_change(self):
        topology = Topology()
        topology.add_link("a", "b", LinkSpec(latency=0.010))
        topology.add_link("b", "c", LinkSpec(latency=0.010))
        assert topology.latency_between("a", "c") == pytest.approx(0.020)
        topology.add_link("a", "c", LinkSpec(latency=0.001))
        assert topology.latency_between("a", "c") == pytest.approx(0.001)

    def test_is_connected(self):
        topology = Topology()
        topology.add_link("a", "b")
        assert topology.is_connected()
        topology.add_node("isolated")
        assert not topology.is_connected()

    def test_links_by_tier(self):
        topology = Topology()
        topology.add_link("a", "b", LinkSpec(tier=TIER_STUB))
        topology.add_link("b", "c", LinkSpec(tier=TIER_TRANSIT))
        assert len(topology.links_by_tier(TIER_STUB)) == 1
        assert len(topology.links_by_tier(TIER_TRANSIT)) == 1


class TestGenerators:
    def test_transit_stub_paper_parameters_give_100_nodes_per_domain(self):
        topology = transit_stub_topology(domains=1, seed=1)
        assert topology.node_count() == 4 * (1 + 3 * 8)
        assert topology.is_connected()

    def test_transit_stub_scales_with_domains(self):
        two = transit_stub_topology(domains=2, seed=1)
        assert two.node_count() == 200
        assert two.is_connected()

    def test_transit_stub_node_kinds(self):
        topology = transit_stub_topology(domains=1, seed=1)
        kinds = {topology.node_kind(node) for node in topology.nodes}
        assert kinds == {"transit", "stub"}

    def test_transit_stub_tier_latencies_match_paper(self):
        topology = transit_stub_topology(domains=1, seed=1)
        latencies = {
            spec.tier: spec.latency for _, _, spec in topology.links()
        }
        assert latencies[TIER_TRANSIT] == pytest.approx(0.050)
        assert latencies[TIER_TRANSIT_STUB] == pytest.approx(0.010)
        assert latencies[TIER_STUB] == pytest.approx(0.002)

    def test_transit_stub_deterministic_for_seed(self):
        a = transit_stub_topology(domains=1, seed=42)
        b = transit_stub_topology(domains=1, seed=42)
        assert sorted(map(str, a.nodes)) == sorted(map(str, b.nodes))
        assert a.link_count() == b.link_count()

    def test_transit_stub_small_stubs_supported(self):
        topology = transit_stub_topology(domains=1, nodes_per_stub=2, seed=0)
        assert topology.is_connected()

    def test_ring_topology_structure(self):
        topology = ring_topology(10, random_peers=False)
        assert topology.node_count() == 10
        assert all(topology.degree(node) == 2 for node in topology.nodes)
        assert topology.is_connected()

    def test_ring_topology_with_random_peers_respects_max_degree(self):
        topology = ring_topology(40, random_peers=True, max_degree=3, seed=2)
        assert topology.is_connected()
        assert all(topology.degree(node) <= 3 for node in topology.nodes)
        assert any(topology.degree(node) == 3 for node in topology.nodes)

    def test_line_topology(self):
        topology = line_topology(5)
        assert topology.node_count() == 5
        assert topology.link_count() == 4
        assert topology.latency_between("n0", "n4") == pytest.approx(4 * 0.010)

    def test_grid_topology(self):
        topology = grid_topology(3, 4)
        assert topology.node_count() == 12
        assert topology.link_count() == 3 * 3 + 2 * 4
        assert topology.is_connected()

    @settings(deadline=None, max_examples=15)
    @given(st.integers(4, 60), st.integers(0, 1000))
    def test_ring_topologies_always_connected(self, size, seed):
        topology = ring_topology(size, seed=seed)
        assert topology.is_connected()
        assert all(topology.degree(node) <= 3 for node in topology.nodes)

    @settings(deadline=None, max_examples=6)
    @given(st.integers(2, 8), st.integers(0, 100))
    def test_scaled_transit_stub_always_connected(self, nodes_per_stub, seed):
        topology = transit_stub_topology(
            domains=1, nodes_per_stub=nodes_per_stub, seed=seed
        )
        assert topology.is_connected()
