"""Unit tests for the NDlog term model (repro.datalog.terms)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.datalog.errors import EvaluationError
from repro.datalog.functions import default_registry
from repro.datalog.terms import (
    AggregateSpec,
    BinaryOp,
    Constant,
    FunctionCall,
    UnaryOp,
    Variable,
    wildcard,
)

FUNCTIONS = default_registry()


def evaluate(term, **binding):
    return term.evaluate(binding, FUNCTIONS)


class TestVariable:
    def test_evaluates_to_bound_value(self):
        assert evaluate(Variable("X"), X=42) == 42

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(Variable("X"))

    def test_variables_yields_name(self):
        assert list(Variable("Cost").variables()) == ["Cost"]

    def test_wildcard_yields_no_variables(self):
        assert list(wildcard().variables()) == []

    def test_wildcard_flag(self):
        assert wildcard().is_wildcard
        assert not Variable("X").is_wildcard

    def test_is_ground_false(self):
        assert not Variable("X").is_ground()


class TestConstant:
    def test_evaluates_to_value(self):
        assert evaluate(Constant(7)) == 7
        assert evaluate(Constant("abc")) == "abc"
        assert evaluate(Constant(None)) is None

    def test_is_ground(self):
        assert Constant(3).is_ground()

    def test_str_quotes_strings(self):
        assert str(Constant("x")) == '"x"'
        assert str(Constant(3)) == "3"


class TestBinaryOp:
    @pytest.mark.parametrize(
        "op, left, right, expected",
        [
            ("+", 2, 3, 5),
            ("-", 7, 2, 5),
            ("*", 4, 3, 12),
            ("/", 9, 3, 3),
            ("%", 9, 4, 1),
            ("==", 3, 3, True),
            ("!=", 3, 4, True),
            ("<", 2, 3, True),
            ("<=", 3, 3, True),
            (">", 4, 3, True),
            (">=", 2, 3, False),
            ("&&", True, False, False),
            ("||", False, True, True),
        ],
    )
    def test_arithmetic_and_comparison(self, op, left, right, expected):
        term = BinaryOp(op, Constant(left), Constant(right))
        assert evaluate(term) == expected

    def test_string_concatenation(self):
        term = BinaryOp("+", Constant("path"), Constant("Cost"))
        assert evaluate(term) == "pathCost"

    def test_mixed_string_concatenation_coerces(self):
        term = BinaryOp("+", Constant("cost"), Constant(5))
        assert evaluate(term) == "cost5"

    def test_float_integer_rendering_in_concatenation(self):
        term = BinaryOp("+", Constant("c"), Constant(5.0))
        assert evaluate(term) == "c5"

    def test_unknown_operator_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(BinaryOp("^^", Constant(1), Constant(2)))

    def test_type_error_wrapped(self):
        with pytest.raises(EvaluationError):
            evaluate(BinaryOp("-", Constant("a"), Constant(1)))

    def test_nested_expression_variables(self):
        term = BinaryOp("+", Variable("A"), BinaryOp("*", Variable("B"), Constant(2)))
        assert sorted(term.variables()) == ["A", "B"]
        assert evaluate(term, A=1, B=3) == 7


class TestUnaryOp:
    def test_negation(self):
        assert evaluate(UnaryOp("-", Constant(4))) == -4

    def test_logical_not(self):
        assert evaluate(UnaryOp("!", Constant(False))) is True

    def test_unknown_operator(self):
        with pytest.raises(EvaluationError):
            evaluate(UnaryOp("~", Constant(1)))


class TestFunctionCall:
    def test_calls_registered_function(self):
        term = FunctionCall("f_size", [Constant([1, 2, 3])])
        assert evaluate(term) == 3

    def test_propagates_argument_variables(self):
        term = FunctionCall("f_concat", [Variable("A"), Variable("B")])
        assert sorted(term.variables()) == ["A", "B"]

    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(FunctionCall("f_nope", []))

    def test_str_rendering(self):
        term = FunctionCall("f_sha1", [Constant("x"), Variable("Y")])
        assert str(term) == 'f_sha1("x", Y)'


class TestAggregateSpec:
    def test_lowercases_function_name(self):
        assert AggregateSpec("MIN", ["C"]).func == "min"

    def test_star_aggregate(self):
        spec = AggregateSpec("count", [])
        assert spec.is_star
        assert list(spec.variables()) == []

    def test_variables_listed(self):
        spec = AggregateSpec("agglist", ["RID", "RLoc"])
        assert list(spec.variables()) == ["RID", "RLoc"]

    def test_cannot_be_evaluated(self):
        with pytest.raises(EvaluationError):
            evaluate(AggregateSpec("min", ["C"]))

    def test_str(self):
        assert str(AggregateSpec("min", ["C"])) == "min<C>"
        assert str(AggregateSpec("count", [])) == "count<*>"


class TestPropertyBased:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_addition_matches_python(self, a, b):
        assert evaluate(BinaryOp("+", Constant(a), Constant(b))) == a + b

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_comparison_matches_python(self, a, b):
        assert evaluate(BinaryOp("<", Constant(a), Constant(b))) == (a < b)

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_string_concatenation_matches_python(self, a, b):
        assert evaluate(BinaryOp("+", Constant(a), Constant(b))) == a + b
