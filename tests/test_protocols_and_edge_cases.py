"""Additional coverage: protocol variants, query edge cases, runner CLI."""

from __future__ import annotations

import pytest

from paper_example import FIGURE3_NODES, figure3_topology, insert_symmetric_links
from repro.core import (
    ExspanConfig,
    ExspanNetwork,
    ProvenanceMode,
    QueryTimeoutError,
    TraversalOrder,
    derivation_count_query,
    polynomial_query,
    count_derivations,
)
from repro.core.query import QuerySpec
from repro.datalog import Fact, StandaloneNetwork
from repro.experiments.runner import main as runner_main
from repro.net import line_topology, ring_topology
from repro.protocols import (
    link_facts,
    mincost_program,
    packet_event,
    packetforward_program,
    pathvector_program,
)


class TestProtocolHelpers:
    def test_link_facts_helper(self):
        facts = link_facts([("a", "b", 1), ("b", "c", 2)])
        assert all(fact.name == "link" for fact in facts)
        assert facts[0].values == ("a", "b", 1)
        assert facts[0].location == "a"

    def test_packet_event_helper(self):
        event = packet_event("a", "a", "d", "xyz")
        assert event.name == "ePacket"
        assert event.location == "a"
        assert event.values == ("a", "a", "d", "xyz")

    def test_bounded_mincost_contains_cost_condition(self):
        program = mincost_program(max_cost=16)
        sp2 = program.rule_by_label("sp2")
        assert len(sp2.body_conditions) == 2  # S != D and C < 16

    def test_bounded_mincost_limits_path_costs(self):
        # a long chain: with max_cost=3 far-away destinations are not derived
        nodes = [f"n{i}" for i in range(6)]
        network = StandaloneNetwork(nodes, mincost_program(max_cost=3))
        for i in range(5):
            network.insert(Fact("link", (nodes[i], nodes[i + 1], 1)))
            network.insert(Fact("link", (nodes[i + 1], nodes[i], 1)))
        network.run()
        costs = {(row[0], row[1]): row[2] for row in network.all_rows("bestPathCost")}
        assert costs[("n0", "n2")] == 2
        assert ("n0", "n5") not in costs  # would require cost 5 >= bound

    def test_bounded_and_unbounded_agree_within_bound(self):
        topology = ring_topology(8, random_peers=False)
        unbounded = StandaloneNetwork(topology.nodes, mincost_program())
        bounded = StandaloneNetwork(topology.nodes, mincost_program(max_cost=100))
        for source, destination, cost in topology.link_facts():
            unbounded.insert(Fact("link", (source, destination, cost)))
            bounded.insert(Fact("link", (source, destination, cost)))
        unbounded.run()
        bounded.run()
        assert unbounded.all_rows("bestPathCost") == bounded.all_rows("bestPathCost")

    def test_packetforward_drops_packet_without_route(self):
        network = StandaloneNetwork(FIGURE3_NODES, packetforward_program())
        # no bestHop tuples installed: the event triggers nothing
        network.insert(Fact("ePacket", ("a", "a", "d", "x")))
        network.run()
        assert network.all_rows("recvPacket") == []

    def test_packet_to_self_is_received_immediately(self):
        program = pathvector_program().extended(packetforward_program(), "pv+fwd")
        network = StandaloneNetwork(FIGURE3_NODES, program)
        insert_symmetric_links(network)
        network.run()
        network.insert(Fact("ePacket", ("a", "a", "a", "self")))
        network.run()
        assert ("a", "a", "a", "self") in network.all_rows("recvPacket")


class TestQueryEdgeCases:
    @pytest.fixture(scope="class")
    def network(self):
        network = ExspanNetwork(
            figure3_topology(),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        return network

    def test_max_depth_truncates_traversal(self, network):
        fact = Fact("bestPathCost", ("a", "d", 8))
        full = network.query_provenance(fact, polynomial_query(name="deep"))
        shallow_spec = polynomial_query(name="shallow")
        shallow_spec.max_depth = 2
        shallow = network.query_provenance(fact, shallow_spec)
        assert count_derivations(full.result) >= count_derivations(shallow.result)

    def test_missing_result_for_zero_depth(self, network):
        spec = derivation_count_query(name="zero-depth")
        spec.max_depth = 0
        outcome = network.query_provenance(Fact("bestPathCost", ("a", "c", 5)), spec)
        assert outcome.result == 0

    def test_query_outcome_metadata(self, network):
        fact = Fact("bestPathCost", ("a", "c", 5))
        outcome = network.query_provenance(fact, polynomial_query(name="meta"), issuer="d")
        assert outcome.issuer == "d"
        assert outcome.target == "a"
        assert outcome.completed_at >= outcome.issued_at
        assert outcome.query_id.startswith("d#")

    def test_spec_registration_is_idempotent(self, network):
        spec = polynomial_query(name="idempotent")
        network.register_query_spec(spec)
        network.register_query_spec(spec)
        outcome = network.query_provenance(Fact("bestPathCost", ("a", "c", 5)), "idempotent")
        assert outcome.result is not None

    def test_moonwalk_width_larger_than_derivations(self, network):
        spec = derivation_count_query(
            name="wide-moon", traversal=TraversalOrder.RANDOM_MOONWALK, moonwalk_width=50
        )
        outcome = network.query_provenance(Fact("bestPathCost", ("a", "c", 5)), spec)
        # width larger than the number of derivations explores all of them
        assert outcome.result == 2

    def test_rule_filter_blocks_specific_rules(self, network):
        spec = polynomial_query(name="no-sp2")
        spec.rule_filter = lambda rule_label, node: rule_label != "sp2"
        outcome = network.query_provenance(Fact("bestPathCost", ("a", "c", 5)), spec)
        # sp2-based derivation is filtered; only the direct sp1 one remains
        assert count_derivations(outcome.result) == 1

    def test_query_spec_defaults(self):
        spec = QuerySpec(
            name="defaults",
            f_edb=lambda vid, fact, node: 1,
            f_idb=lambda results, vid, node: sum(results),
            f_rule=lambda results, rule, node: 1,
        )
        assert spec.traversal is TraversalOrder.BFS
        assert spec.allow_node("anything")
        assert spec.allow_rule("sp1", "a")
        assert spec.missing() is None


class TestRunnerCli:
    def test_runner_main_single_figure(self, capsys):
        exit_code = runner_main(["--figure", "17", "--quiet"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 17" in captured.out

    def test_runner_rejects_unknown_figure(self):
        with pytest.raises(KeyError):
            runner_main(["--figure", "99", "--quiet"])


class TestSimulatedNetworkSmallTopologies:
    def test_line_topology_fixpoint_latency_proportional_to_length(self):
        config = ExspanConfig(mode=ProvenanceMode.NONE)
        short = ExspanNetwork(line_topology(3), mincost_program(), config=config)
        short.seed_links()
        short_time = short.run_to_fixpoint()
        long = ExspanNetwork(line_topology(7), mincost_program(), config=config)
        long.seed_links()
        long_time = long.run_to_fixpoint()
        assert long_time > short_time

    def test_two_node_network(self):
        network = ExspanNetwork(
            line_topology(2),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        costs = {(row[0], row[1]): row[2] for _, row in network.tuples("bestPathCost")}
        assert costs == {("n0", "n1"): 1, ("n1", "n0"): 1}
        outcome = network.query_provenance(
            Fact("bestPathCost", ("n0", "n1", 1)), polynomial_query(name="tiny")
        )
        assert count_derivations(outcome.result) == 1
