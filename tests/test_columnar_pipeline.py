"""Columnar-pipeline specifics the equivalence sweeps don't pin down.

``tests/test_plan_equivalence.py`` proves the columnar pipeline
bit-identical to the interpreted ones; this module covers the machinery
behind that result: generated-kernel dispatch and its guarded fallbacks,
the ``Delta.frozen`` storage fast path, window bookkeeping under
``max_steps``, primary-key replacement inside batches, EXPLAIN rendering,
and the cache counters surfaced through ``metrics_snapshot``.
"""

from __future__ import annotations

import pytest

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode
from repro.core.rewrite import rewrite_program
from repro.datalog import Fact, StandaloneNetwork
from repro.datalog.engine import INSERT, Delta, EvaluationError, NDlogEngine
from repro.datalog.functions import default_registry
from repro.datalog.parser import parse_program
from repro.datalog.plan.columnar import batch_kernel_for, describe_kernel
from repro.datalog.plan.explain import columnar_summary
from repro.net import ring_topology
from repro.protocols import mincost_program, pathvector_program


def _columnar_counters(network: StandaloneNetwork) -> dict:
    totals: dict = {}
    for engine in network.engines.values():
        for name, value in engine.columnar_counters.items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _run_ring(program, pipeline: str, size: int = 6, **engine_kwargs):
    topology = ring_topology(size, seed=0)
    network = StandaloneNetwork(
        topology.nodes, program, pipeline=pipeline, **engine_kwargs
    )
    for source, destination, cost in topology.link_facts():
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    return network


def _snapshot(network: StandaloneNetwork) -> dict:
    names = set()
    for engine in network.engines.values():
        names.update(engine.catalog.names())
    return {name: network.all_rows(name) for name in sorted(names)}


class TestKernelDispatch:
    def test_rewritten_pathvector_runs_entirely_on_kernels(self):
        """The headline workload never hits the generic per-delta path."""
        network = _run_ring(rewrite_program(pathvector_program()), "columnar")
        counters = _columnar_counters(network)
        assert counters["windows"] > 0
        assert counters["segments"] >= counters["windows"]
        assert counters["kernel_batches"] > 0
        assert counters.get("generic_batches", 0) == 0
        assert counters["deltas"] > 0

    def test_aggregate_rules_use_the_aggregate_kernel(self):
        """MINCOST's MIN aggregation stays on the batch path too."""
        network = _run_ring(mincost_program(), "columnar")
        counters = _columnar_counters(network)
        assert counters["kernel_batches"] > 0
        assert counters.get("generic_batches", 0) == 0

    def test_reregistered_builtin_falls_back_to_generic_path(self):
        """Kernels inline default builtins but guard on the registry.

        Re-registering an inlined builtin (even with an identical
        implementation) must route every affected batch through
        ``run_generic_firing`` — and the result must not change.
        """
        program = rewrite_program(pathvector_program())
        reference = _snapshot(_run_ring(program, "batched"))

        def registry():
            fns = default_registry()
            original = fns._functions["f_sha1"]
            fns.register("f_sha1", lambda args: original(args))
            return fns

        network = _run_ring(program, "columnar", functions=registry())
        assert _snapshot(network) == reference
        counters = _columnar_counters(network)
        assert counters["generic_batches"] > 0

    def test_multi_step_plans_have_no_kernel(self):
        """Plans outside the zero/one-step subset return ``None``."""
        program = parse_program(
            """
            t3 wide(@A,D) :- e1(@A,B), e2(@B,C), e3(@C,D).
            """
        )
        engine = NDlogEngine("n", program, pipeline="columnar")
        multi = [
            plan for plan in engine._plans.values() if len(plan.steps) > 1
        ]
        assert multi, "expected at least one multi-step plan"
        assert all(batch_kernel_for(plan) is None for plan in multi)


class TestFrozenSideChannel:
    def test_delta_frozen_defaults_to_none_and_never_compares(self):
        fact = Fact("link", ("a", "b", 1))
        bare = Delta(INSERT, fact)
        assert bare.frozen is None
        tagged = Delta(INSERT, fact, None, ("a", "b", 1))
        assert bare == tagged  # frozen is a side channel, not identity
        assert "frozen" not in repr(tagged)

    def test_kernel_frozen_rows_intern_to_the_same_objects(self):
        """Kernel-prefrozen rows and interpreter-frozen rows must collide.

        Storage interning is keyed by the frozen row; if the kernels froze
        a value differently than ``catalog._freeze`` the two pipelines
        would intern distinct rows and fixpoints would drift.
        """
        program = rewrite_program(pathvector_program())
        columnar = _run_ring(program, "columnar")
        delta = _run_ring(program, "delta")
        for name in ("prov", "ruleExec", "bestPathCost"):
            assert columnar.all_rows(name) == delta.all_rows(name)


class TestWindowing:
    def test_max_steps_bounds_processed_deltas(self):
        topology = ring_topology(6, seed=0)
        network = StandaloneNetwork(
            topology.nodes, pathvector_program(), pipeline="columnar"
        )
        for source, destination, cost in topology.link_facts():
            network.insert(Fact("link", (source, destination, cost)))
        engine = next(iter(network.engines.values()))
        steps = engine.run(max_steps=3)
        assert 0 < steps <= 3
        # finishing the fixpoint afterwards converges to the batched result
        network.run()
        reference = _run_ring(pathvector_program(), "batched")
        assert _snapshot(network) == _snapshot(reference)

    def test_primary_key_replacement_inside_batches(self):
        """PK updates arriving in one window evict exactly like per-delta."""
        program_text = """
            materialize(best, 2, keys(0)).
            b1 best(@N,C) :- offer(@N,C).
        """
        states = {}
        for pipeline in ("delta", "columnar"):
            engine = NDlogEngine(
                "n", parse_program(program_text), pipeline=pipeline
            )
            for cost in (5, 3, 7):
                engine.insert(Fact("offer", ("n", cost)))
            engine.run()
            states[pipeline] = {
                name: engine.table_rows(name) for name in ("offer", "best")
            }
        assert states["columnar"] == states["delta"]
        assert len(states["columnar"]["best"]) == 1  # PK replaced twice

    def test_remote_derivation_without_send_callback_raises(self):
        program = parse_program("r1 there(@D,S) :- here(@S,D).")
        engine = NDlogEngine("n", program, pipeline="columnar")
        engine.insert(Fact("here", ("n", "m")))
        with pytest.raises(EvaluationError, match="no .*send callback"):
            engine.run()


class TestExplainAndMetrics:
    def test_explain_renders_kernel_lines_and_summary(self):
        network = _run_ring(mincost_program(), "columnar")
        engine = next(iter(network.engines.values()))
        text = engine.explain()
        assert "columnar:" in text
        assert "batch kernel" in text
        assert "columnar batching:" in text
        assert "estimated batch width" in text

    def test_describe_kernel_names_the_aggregate_kernel(self):
        engine = NDlogEngine("n", mincost_program(), pipeline="columnar")
        descriptions = [
            line
            for plan in engine._plans.values()
            for line in describe_kernel(plan)
        ]
        assert any("grouped aggregate" in line for line in descriptions)

    def test_columnar_summary_handles_untouched_engines(self):
        line = columnar_summary({})
        assert "0 window(s)" in line
        assert "width 0.0" in line

    def test_metrics_snapshot_exposes_sha1_and_vid_cache_counters(self):
        network = ExspanNetwork(
            ring_topology(5, seed=0),
            mincost_program(),
            config=ExspanConfig(
                mode=ProvenanceMode.REFERENCE, pipeline="columnar"
            ),
        )
        network.seed_links()
        network.run_to_fixpoint()
        snapshot = network.metrics_snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        for layer in ("sha1", "vid"):
            assert f"cache.{layer}.hits" in counters
            assert f"cache.{layer}.misses" in counters
            assert gauges[f"cache.{layer}.limit"] > 0
        # the rewrite workload actually exercises the sha1 memo
        assert counters["cache.sha1.hits"] + counters["cache.sha1.misses"] > 0
