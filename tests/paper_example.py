"""Shared fixtures for the ExSPAN reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode
from repro.datalog import Fact, StandaloneNetwork
from repro.net import Topology, LinkSpec, ring_topology
from repro.protocols import mincost_program, pathvector_program

#: The example topology of Figure 3 in the paper: (src, dst, cost) triples
#: (one direction only; links are symmetric).
FIGURE3_LINKS = [
    ("a", "b", 3),
    ("a", "c", 5),
    ("b", "c", 2),
    ("b", "d", 5),
    ("c", "d", 3),
]

FIGURE3_NODES = ["a", "b", "c", "d"]

#: Best path costs expected on the Figure 3 topology.
FIGURE3_BEST_COSTS = {
    ("a", "b"): 3,
    ("a", "c"): 5,
    ("a", "d"): 8,
    ("b", "c"): 2,
    ("b", "d"): 5,
    ("c", "d"): 3,
}


def insert_symmetric_links(network, links=FIGURE3_LINKS) -> None:
    """Insert link facts in both directions into a StandaloneNetwork."""
    for source, destination, cost in links:
        network.insert(Fact("link", (source, destination, cost)))
        network.insert(Fact("link", (destination, source, cost)))


def figure3_topology() -> Topology:
    """The Figure 3 topology as a :class:`Topology` (latency 1 ms per link)."""
    topology = Topology(name="figure3")
    for source, destination, cost in FIGURE3_LINKS:
        topology.add_link(source, destination, LinkSpec(latency=0.001, cost=cost))
    return topology


@pytest.fixture
def figure3_standalone_mincost() -> StandaloneNetwork:
    """MINCOST running to fixpoint on the Figure 3 topology (no simulator)."""
    network = StandaloneNetwork(FIGURE3_NODES, mincost_program())
    insert_symmetric_links(network)
    network.run()
    return network


@pytest.fixture
def figure3_exspan_reference() -> ExspanNetwork:
    """Reference-provenance MINCOST on the Figure 3 topology (simulated)."""
    network = ExspanNetwork(
        figure3_topology(),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


@pytest.fixture
def small_ring_reference() -> ExspanNetwork:
    """Reference-provenance MINCOST on a 10-node ring (unit link costs)."""
    network = ExspanNetwork(
        ring_topology(10, seed=7),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


@pytest.fixture
def small_ring_pathvector() -> ExspanNetwork:
    """Reference-provenance PATHVECTOR on an 8-node ring."""
    network = ExspanNetwork(
        ring_topology(8, seed=5),
        pathvector_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network
