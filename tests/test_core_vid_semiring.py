"""Tests for vertex identifiers and provenance polynomials."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    EMPTY,
    absorb,
    count_derivations,
    fact_vid,
    is_derivable,
    node_set,
    product_of,
    rule_rid,
    sum_of,
    tuple_vid,
    var,
)
from repro.core.semiring import Literal, Product, Sum
from repro.datalog import Fact
from repro.datalog.functions import default_registry, sha1_hex


class TestVids:
    def test_tuple_vid_matches_paper_formula(self):
        # VID = SHA1("link" + b + c + 2)
        assert tuple_vid("link", ("b", "c", 2)) == sha1_hex("linkbc2")

    def test_fact_vid_equals_tuple_vid(self):
        fact = Fact("pathCost", ("a", "c", 5))
        assert fact_vid(fact) == tuple_vid("pathCost", ("a", "c", 5))

    def test_rule_rid_matches_paper_formula(self):
        vid = tuple_vid("link", ("b", "c", 2))
        # RID = SHA1("sp1" + b + VID1)
        assert rule_rid("sp1", "b", [vid]) == sha1_hex("sp1b" + vid)

    def test_vid_agrees_with_f_sha1_builtin(self):
        registry = default_registry()
        assert tuple_vid("link", ("a", "c", 5)) == registry.call(
            "f_sha1", ["link", "a", "c", 5]
        )

    def test_rid_agrees_with_f_sha1_over_vid_list(self):
        registry = default_registry()
        vids = [tuple_vid("link", ("b", "a", 3)), tuple_vid("bestPathCost", ("b", "c", 2))]
        assert rule_rid("sp2", "b", vids) == registry.call("f_sha1", ["sp2", "b", vids])

    def test_memoized_vid_equals_uncached_and_survives_odd_values(self):
        """The bounded cache must change nothing — including for values the
        cache key cannot hash (sets fall through to direct computation)."""
        from repro.core.vid import clear_vid_caches, set_vid_caching, vid_cache_stats

        cases = [
            ("link", ("b", "c", 2)),
            ("path", ("a", "b", 3, ["a", "b"])),  # list attribute
            ("odd", ({"x"},)),  # unhashable attribute: cache skipped
            ("odd", (None, True, 2.0)),
        ]
        set_vid_caching(False)
        uncached = [tuple_vid(name, values) for name, values in cases]
        set_vid_caching(True)
        clear_vid_caches()
        cached_cold = [tuple_vid(name, values) for name, values in cases]
        cached_warm = [tuple_vid(name, values) for name, values in cases]
        assert uncached == cached_cold == cached_warm
        stats = vid_cache_stats()
        assert stats["vid"]["hits"] >= 3  # the hashable cases hit on re-query

    def test_float_costs_render_like_ints(self):
        assert tuple_vid("link", ("a", "b", 3.0)) == tuple_vid("link", ("a", "b", 3))

    @given(
        st.text(min_size=1, max_size=10),
        st.lists(st.one_of(st.text(max_size=5), st.integers(0, 99)), max_size=5),
    )
    def test_vid_is_deterministic(self, name, values):
        assert tuple_vid(name, values) == tuple_vid(name, list(values))

    def test_different_tuples_have_different_vids(self):
        assert tuple_vid("link", ("a", "b", 1)) != tuple_vid("link", ("a", "b", 2))
        assert tuple_vid("link", ("a", "b", 1)) != tuple_vid("pathCost", ("a", "b", 1))


class TestPolynomialConstruction:
    def test_figure4_polynomial(self):
        # provenance of bestPathCost(@a,c,5): alpha + beta * gamma
        alpha, beta, gamma = var("alpha"), var("beta"), var("gamma")
        expression = sum_of([alpha, product_of([beta, gamma], rule="sp2", location="b")])
        assert count_derivations(expression) == 2
        assert node_set(expression) == frozenset({"alpha", "beta", "gamma"})
        assert is_derivable(expression)

    def test_sum_flattens_and_drops_empty(self):
        expression = sum_of([var("a"), sum_of([var("b"), var("c")]), EMPTY])
        assert isinstance(expression, Sum)
        assert len(expression.terms) == 3

    def test_product_with_empty_is_empty(self):
        assert product_of([var("a"), EMPTY]) is EMPTY

    def test_singleton_sum_and_product_collapse(self):
        assert sum_of([var("a")]) == var("a")
        assert product_of([var("a")]) == var("a")

    def test_empty_sum_is_empty(self):
        assert sum_of([]) is EMPTY
        assert product_of([]) is EMPTY

    def test_operator_overloads(self):
        expression = var("a") + var("b") * var("c")
        assert count_derivations(expression) == 2

    def test_string_rendering_includes_rule_annotations(self):
        expression = product_of([var("b"), var("g")], rule="sp2", location="b")
        assert "<sp2@b>" in str(expression)

    def test_depth(self):
        assert var("x").depth() == 1
        assert (var("x") + var("y")).depth() == 2
        assert EMPTY.depth() == 0

    def test_wire_size_grows_with_content(self):
        small = var("a")
        large = sum_of([var("a" * 10), var("b" * 10)], location="node")
        assert large.wire_size() > small.wire_size()


class TestSemiringEvaluations:
    def test_count_derivations_multiplies_joins(self):
        # (a + b) * (c + d) has 4 derivations
        expression = product_of([sum_of([var("a"), var("b")]), sum_of([var("c"), var("d")])])
        assert count_derivations(expression) == 4

    def test_derivability_with_trusted_set(self):
        expression = sum_of([var("a"), product_of([var("b"), var("c")])])
        assert is_derivable(expression, trusted={"a"})
        assert is_derivable(expression, trusted={"b", "c"})
        assert not is_derivable(expression, trusted={"b"})
        assert not is_derivable(EMPTY)

    def test_node_set_collects_all_literals(self):
        expression = product_of([var("n1"), sum_of([var("n2"), var("n1")])])
        assert node_set(expression) == frozenset({"n1", "n2"})

    def test_empty_has_zero_derivations(self):
        assert count_derivations(EMPTY) == 0


class TestAbsorption:
    def test_paper_example_a_plus_ab_absorbs_to_a(self):
        # a * (a + b) = a  (Section 6.3)
        expression = product_of([var("a"), sum_of([var("a"), var("b")])])
        assert absorb(expression) == frozenset({frozenset({"a"})})

    def test_absorption_keeps_incomparable_products(self):
        expression = sum_of([product_of([var("a"), var("b")]), product_of([var("c"), var("d")])])
        assert absorb(expression) == frozenset(
            {frozenset({"a", "b"}), frozenset({"c", "d"})}
        )

    def test_absorption_removes_supersets(self):
        expression = sum_of([var("a"), product_of([var("a"), var("b")])])
        assert absorb(expression) == frozenset({frozenset({"a"})})

    def test_absorbed_form_preserves_derivability(self):
        expression = product_of([var("a"), sum_of([var("a"), var("b")])])
        dnf = absorb(expression)
        # trusting only 'a' still derives the tuple in both representations
        assert is_derivable(expression, trusted={"a"})
        assert any(product <= {"a"} for product in dnf)


# strategy for random provenance expressions over a small literal alphabet
_literals = st.sampled_from(["a", "b", "c", "d", "e"])


def _expressions(depth: int = 3):
    base = _literals.map(var)
    if depth == 0:
        return base
    sub = _expressions(depth - 1)
    return st.one_of(
        base,
        st.lists(sub, min_size=1, max_size=3).map(sum_of),
        st.lists(sub, min_size=1, max_size=3).map(product_of),
    )


class TestPolynomialProperties:
    @given(_expressions())
    def test_count_derivations_is_positive_for_nonempty(self, expression):
        assert count_derivations(expression) >= 1

    @given(_expressions())
    def test_dnf_products_only_use_expression_literals(self, expression):
        literals = set(expression.literals())
        for product in expression.to_dnf():
            assert set(product) <= literals

    @given(_expressions(), st.sets(_literals, max_size=5))
    def test_dnf_equivalent_to_expression_for_derivability(self, expression, trusted):
        """Absorption is lossless for derivability tests (Section 6.3)."""
        via_expression = is_derivable(expression, trusted=trusted)
        via_dnf = any(product <= trusted for product in expression.to_dnf())
        assert via_expression == via_dnf

    @given(_expressions())
    def test_dnf_is_antichain(self, expression):
        """After absorption no product contains another."""
        products = list(expression.to_dnf())
        for index, left in enumerate(products):
            for right in products[index + 1 :]:
                assert not (left <= right or right <= left)
