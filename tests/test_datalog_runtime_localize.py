"""Tests for the standalone multi-node runtime and rule localization checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from paper_example import FIGURE3_BEST_COSTS, FIGURE3_LINKS, FIGURE3_NODES, insert_symmetric_links
from repro.datalog import (
    Fact,
    StandaloneNetwork,
    ValidationError,
    parse_program,
    parse_rule,
)
from repro.datalog.errors import EvaluationError
from repro.datalog.localize import body_location, check_localized, is_localized, remote_head_rules
from repro.protocols import mincost_program, pathvector_program


class TestLocalization:
    def test_localized_rule_single_body_location(self):
        rule = parse_rule("sp2 pathCost(@S,D,C) :- link(@Z,S,C1), bestPathCost(@Z,D,C2), C=C1+C2.")
        assert body_location(rule) == "Z"
        assert is_localized(rule)

    def test_non_localized_rule_detected(self):
        rule = parse_rule("bad out(@S,D) :- link(@S,D,C), other(@D,S).")
        assert not is_localized(rule)
        with pytest.raises(ValidationError):
            body_location(rule)

    def test_check_localized_accepts_paper_programs(self):
        check_localized(mincost_program())
        check_localized(pathvector_program())

    def test_remote_head_rules_for_mincost(self):
        remote = remote_head_rules(mincost_program())
        labels = [rule.label for rule, _, _ in remote]
        assert labels == ["sp2"]
        _, body_loc, head_loc = remote[0]
        assert (body_loc, head_loc) == ("Z", "S")

    def test_rule_without_body_atoms_has_no_location(self):
        rule = parse_rule("r1 out(@X,1) :- X==X.")
        # Rule is unsafe (X unbound) but body_location alone returns None.
        assert body_location(rule) is None


class TestStandaloneNetworkMincost:
    def test_best_path_costs_match_expected(self, figure3_standalone_mincost):
        rows = figure3_standalone_mincost.all_rows("bestPathCost")
        for (source, destination), cost in FIGURE3_BEST_COSTS.items():
            assert (source, destination, cost) in rows
            assert (destination, source, cost) in rows

    def test_best_costs_stored_at_source_node(self, figure3_standalone_mincost):
        rows = figure3_standalone_mincost.table_rows("a", "bestPathCost")
        assert all(row[0] == "a" for row in rows)

    def test_link_deletion_reroutes(self, figure3_standalone_mincost):
        network = figure3_standalone_mincost
        network.delete(Fact("link", ("b", "c", 2)))
        network.delete(Fact("link", ("c", "b", 2)))
        network.run()
        rows = network.all_rows("bestPathCost")
        assert ("b", "c", 8) in rows  # rerouted: b -> a -> c (3+5) or b -> d -> c (5+3)
        assert ("a", "c", 5) in rows  # direct link unaffected

    def test_link_insertion_improves_cost(self, figure3_standalone_mincost):
        network = figure3_standalone_mincost
        network.insert(Fact("link", ("a", "d", 1)))
        network.insert(Fact("link", ("d", "a", 1)))
        network.run()
        rows = network.all_rows("bestPathCost")
        assert ("a", "d", 1) in rows
        assert ("a", "c", 4) in rows  # a -> d -> c = 1 + 3

    def test_unknown_destination_node_raises(self):
        network = StandaloneNetwork(["a"], mincost_program())
        with pytest.raises(EvaluationError):
            network.insert(Fact("link", ("zzz", "a", 1)))

    def test_messages_are_counted(self, figure3_standalone_mincost):
        assert figure3_standalone_mincost.messages_sent > 0


class TestStandaloneNetworkPathvector:
    @pytest.fixture
    def network(self):
        network = StandaloneNetwork(FIGURE3_NODES, pathvector_program())
        insert_symmetric_links(network)
        network.run()
        return network

    def test_best_path_for_a_to_c_goes_through_b(self, network):
        rows = [row for row in network.all_rows("bestPath") if row[0] == "a" and row[1] == "c"]
        assert len(rows) == 1
        assert rows[0][2] == 5
        assert list(rows[0][3]) == ["a", "b", "c"]

    def test_best_hop_matches_path(self, network):
        rows = [row for row in network.all_rows("bestHop") if row[0] == "a" and row[1] == "c"]
        assert rows == [("a", "c", "b")]

    def test_paths_are_loop_free(self, network):
        for row in network.all_rows("bestPath"):
            path = list(row[3])
            assert len(path) == len(set(path))

    def test_path_costs_agree_with_mincost(self, network, figure3_standalone_mincost):
        pv_costs = {
            (row[0], row[1]): row[2] for row in network.all_rows("bestPathCost")
        }
        mc_costs = {
            (row[0], row[1]): row[2]
            for row in figure3_standalone_mincost.all_rows("bestPathCost")
        }
        assert pv_costs == mc_costs


class TestAgainstNetworkxReference:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000))
    def test_mincost_matches_dijkstra_on_random_graphs(self, seed):
        """MINCOST agrees with networkx shortest paths on random graphs."""
        import random

        import networkx as nx

        rng = random.Random(seed)
        node_count = rng.randint(4, 8)
        nodes = [f"v{i}" for i in range(node_count)]
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        # random connected graph: spanning chain plus extra edges
        for i in range(1, node_count):
            graph.add_edge(nodes[i - 1], nodes[i], weight=rng.randint(1, 5))
        for _ in range(node_count):
            a, b = rng.sample(nodes, 2)
            if not graph.has_edge(a, b):
                graph.add_edge(a, b, weight=rng.randint(1, 5))

        network = StandaloneNetwork(nodes, mincost_program())
        for a, b, data in graph.edges(data=True):
            network.insert(Fact("link", (a, b, data["weight"])))
            network.insert(Fact("link", (b, a, data["weight"])))
        network.run()

        lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
        computed = {
            (row[0], row[1]): row[2] for row in network.all_rows("bestPathCost")
        }
        for source in nodes:
            for destination in nodes:
                if source == destination:
                    continue
                expected = lengths[source].get(destination)
                assert computed.get((source, destination)) == expected
