"""Pluggable storage engine: spec parsing, byte-identity, sqlite mirror.

The storage backend is an execution-environment knob (the ``--shards`` /
``--pipeline`` convention): results must be byte-identical under any
backend.  These tests pin that contract — the memory default adds
nothing, the sqlite mirror tracks the engines through inserts *and*
deletes, metrics only appear when a persistent backend is attached, and
an in-process checkpoint round-trip (including aggregate-rule state)
reproduces every digest and keeps evolving identically afterwards.
"""

import os

import pytest

from repro.core.api import ExspanNetwork
from repro.core.config import ExspanConfig
from repro.core.errors import ProvenanceError
from repro.core.rewrite import PROV_TABLE, RULE_EXEC_TABLE
from repro.datalog.ast import is_event_predicate
from repro.net.sharding import node_state_digest
from repro.net.topology import ring_topology
from repro.protocols.mincost import mincost_program
from repro.storage import (
    STORAGE_BACKENDS,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    StorageError,
    default_storage,
    make_backend,
    parse_storage_spec,
    set_default_storage,
)


def _digests(network):
    return {
        address: node_state_digest(node.engine)
        for address, node in network.nodes.items()
    }


def _run_mincost(storage=None, size=6, seed=1):
    config = ExspanConfig(seed=0)
    if storage is not None:
        config = ExspanConfig(seed=0, storage=storage)
    network = ExspanNetwork(ring_topology(size, seed=seed), mincost_program(), config=config)
    network.seed_links()
    network.run_to_fixpoint()
    return network


# ---------------------------------------------------------------------- #
# spec parsing, factory, process-wide default
# ---------------------------------------------------------------------- #
def test_parse_storage_spec():
    assert parse_storage_spec("memory") == ("memory", None)
    assert parse_storage_spec("sqlite") == ("sqlite", None)
    assert parse_storage_spec("sqlite:/tmp/x.db") == ("sqlite", "/tmp/x.db")


@pytest.mark.parametrize("bad", ["", "postgres", "memory:/tmp/x", "sqlite:"])
def test_parse_storage_spec_rejects(bad):
    with pytest.raises(StorageError):
        parse_storage_spec(bad)


def test_make_backend_kinds(tmp_path):
    memory = make_backend("memory")
    assert isinstance(memory, MemoryBackend)
    assert not memory.persistent and not memory.supports_sql
    path = str(tmp_path / "prov.sqlite")
    sqlite = make_backend(f"sqlite:{path}")
    assert isinstance(sqlite, SqliteBackend)
    assert sqlite.persistent and sqlite.supports_sql
    assert sqlite.path == path
    assert os.path.exists(path)
    sqlite.close()
    assert os.path.exists(path)  # explicit paths survive close


def test_ephemeral_sqlite_removed_on_close():
    backend = make_backend("sqlite")
    path = backend.path
    assert path is not None and os.path.exists(path)
    backend.close()
    assert not os.path.exists(path)


def test_default_storage_knob():
    assert default_storage() == "memory"
    set_default_storage("sqlite")
    try:
        assert default_storage() == "sqlite"
        assert isinstance(make_backend(), SqliteBackend)
    finally:
        set_default_storage("memory")
    assert isinstance(make_backend(), MemoryBackend)
    with pytest.raises(StorageError):
        set_default_storage("bogus")


def test_memory_backend_rejects_sql():
    backend = make_backend("memory")
    with pytest.raises(StorageError):
        backend.sql_query("reachable", "deadbeef")


def test_backend_registry_names():
    assert STORAGE_BACKENDS == ("memory", "sqlite")
    assert MemoryBackend.kind == "memory"
    assert SqliteBackend.kind == "sqlite"
    assert issubclass(MemoryBackend, StorageBackend)
    assert issubclass(SqliteBackend, StorageBackend)


# ---------------------------------------------------------------------- #
# config surface
# ---------------------------------------------------------------------- #
def test_config_validates_storage_spec():
    assert ExspanConfig(storage="sqlite").storage == "sqlite"
    with pytest.raises(ProvenanceError):
        ExspanConfig(storage="flatfile")


def test_config_to_dict_omits_default_storage():
    assert "storage" not in ExspanConfig().to_dict()
    assert ExspanConfig(storage="sqlite").to_dict()["storage"] == "sqlite"


# ---------------------------------------------------------------------- #
# byte-identity across backends
# ---------------------------------------------------------------------- #
def test_sqlite_backend_bit_identical_to_memory():
    memory_net = _run_mincost()
    sqlite_net = _run_mincost(storage="sqlite")
    try:
        assert _digests(sqlite_net) == _digests(memory_net)
        assert sqlite_net.stats_snapshot() == memory_net.stats_snapshot()
    finally:
        sqlite_net.close_storage()


def test_sqlite_mirror_tracks_inserts_and_deletes(tmp_path):
    path = str(tmp_path / "mirror.sqlite")
    network = _run_mincost(storage=f"sqlite:{path}")
    try:
        network.storage_flush()
        counts = network.storage.graph_counts()
        assert counts["tuples"] > 0
        assert counts["prov"] > 0
        assert counts["rule_exec"] > 0
        # prov/ruleExec live in their own relations; everything else is in
        # `tuples`.  Together they account for every materialized row.
        assert (
            counts["tuples"] + counts["prov"] + counts["rule_exec"]
            == network.storage.row_count()
        )

        # Mirror the engines exactly: every non-event row of every node
        # must appear in the `tuples` table, and nothing else.
        expected = set()
        for address, node in network.nodes.items():
            for table in node.engine.catalog.tables():
                if is_event_predicate(table.name):
                    continue
                if table.name in (PROV_TABLE, RULE_EXEC_TABLE):
                    continue
                for row in table.rows():
                    expected.add((address, table.name, tuple(row)))
        mirrored = {
            (node, name, tuple(row))
            for node, name, row, _vid in network.storage.tuple_rows()
        }
        assert mirrored == expected

        # A deletion must propagate: retract a link and re-run.
        before = network.storage.graph_counts()["tuples"]
        network.remove_link("n0", "n1")
        network.run_to_fixpoint()
        after = network.storage.graph_counts()["tuples"]
        assert after != before
        # Deleted rows really leave the database, not just the engines.
        engine_rows = sum(
            len(table)
            for node in network.nodes.values()
            for table in node.engine.catalog.tables()
            if not is_event_predicate(table.name)
            and table.name not in (PROV_TABLE, RULE_EXEC_TABLE)
        )
        assert after == engine_rows
    finally:
        network.close_storage()


def test_storage_metrics_only_under_persistent_backend():
    memory_net = _run_mincost()
    snapshot = memory_net.metrics_snapshot()
    assert not any(
        key.startswith("cache.storage.")
        for family in ("counters", "gauges")
        for key in snapshot[family]
    )

    sqlite_net = _run_mincost(storage="sqlite")
    try:
        sqlite_net.storage_flush()
        snapshot = sqlite_net.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["cache.storage.journal_appends"] > 0
        assert counters["cache.storage.flushes"] >= 1
        assert snapshot["gauges"]["cache.storage.rows"] == (
            sqlite_net.storage.row_count()
        )
    finally:
        sqlite_net.close_storage()


def test_storage_stats_shape():
    network = _run_mincost(storage="sqlite")
    try:
        stats = network.storage_stats()
        assert stats["kind"] == "sqlite"
        assert stats["persistent"] is True
        for key in ("journal_appends", "flushes", "flushed_ops", "sql_queries"):
            assert key in stats
    finally:
        network.close_storage()


# ---------------------------------------------------------------------- #
# checkpoint / restore round-trip (in-process)
# ---------------------------------------------------------------------- #
def _checkpoint_round_trip(tmp_path, storage=None):
    topology = ring_topology(6, seed=3)
    network = ExspanNetwork(
        topology,
        mincost_program(),
        config=ExspanConfig(seed=0, storage=storage) if storage else ExspanConfig(seed=0),
    )
    network.seed_links()
    network.run_to_fixpoint()
    path = str(tmp_path / "net.ckpt")
    summary = network.checkpoint(path)
    assert summary["path"] == path
    assert summary["nodes"] == 6
    assert summary["bytes"] > 0

    restored = ExspanNetwork.restore(
        path,
        topology,
        mincost_program(),
        storage=storage,
    )
    return network, restored


def test_checkpoint_restore_byte_identical(tmp_path):
    network, restored = _checkpoint_round_trip(tmp_path)
    assert _digests(restored) == _digests(network)
    # Engine counters ride along in the snapshot; traffic counters don't
    # (a restored process never re-sent the original messages).
    assert restored.planner_stats() == network.planner_stats()
    assert restored.now == network.now


def test_checkpoint_restore_then_evolve_identically(tmp_path):
    """The restored network must keep *evolving* identically.

    This is the aggregate-state test: `min<C>` keeps per-group value
    multisets outside the tables, and without them a restored network
    never retracts a stale minimum when the winning path disappears.
    """
    network, restored = _checkpoint_round_trip(tmp_path)
    for net in (network, restored):
        net.remove_link("n0", "n1")
        net.run_to_fixpoint()
        net.add_link("n2", "n5", cost=2)
        net.run_to_fixpoint()
    assert _digests(restored) == _digests(network)
    assert sorted(restored.tuples("bestPathCost")) == sorted(
        network.tuples("bestPathCost")
    )


def test_checkpoint_restore_onto_sqlite(tmp_path):
    """Restoring onto a persistent backend replays rows into the mirror."""
    network, restored = _checkpoint_round_trip(tmp_path, storage="sqlite")
    try:
        assert _digests(restored) == _digests(network)
        restored.storage_flush()
        assert restored.storage.row_count() > 0
        assert restored.storage.counters["restores"] == 1
    finally:
        network.close_storage()
        restored.close_storage()


def test_restore_rejects_mismatched_topology(tmp_path):
    network = _run_mincost(size=6, seed=3)
    path = str(tmp_path / "net.ckpt")
    network.checkpoint(path)
    with pytest.raises(ProvenanceError):
        ExspanNetwork.restore(path, ring_topology(5, seed=3), mincost_program())
