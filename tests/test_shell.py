"""Shell behavior and the golden-transcript gate.

The golden transcript (``tests/golden/shell_session.txt``) is the
committed output of the scripted session in
``tests/golden/shell_session.commands`` against an embedded ring:5
MINCOST service — including ``\\explain`` and ``\\prov`` output.  CI
replays the same session against a *separate server process* and diffs
against the same file, so the transcript also pins the wire protocol.
"""

import io
import os
from pathlib import Path

import pytest

from repro.core.errors import ProvenanceError
from repro.service.bootstrap import build_network
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.shell import ExspanShell, parse_fact

GOLDEN_DIR = Path(__file__).parent / "golden"


class TestParseFact:
    def test_basic(self):
        assert parse_fact("link(n0,n1,3)") == {
            "name": "link",
            "values": ["n0", "n1", 3],
            "location_index": 0,
        }

    def test_whitespace_tolerated(self):
        assert parse_fact("  link( n0 , n1 , 3 ) ") == {
            "name": "link",
            "values": ["n0", "n1", 3],
            "location_index": 0,
        }

    def test_nullary(self):
        assert parse_fact("tick()") == {"name": "tick", "values": [], "location_index": 0}

    @pytest.mark.parametrize("text", ["link", "link(n0,n1", "(n0)", "link(n0,,n1)"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ProvenanceError):
            parse_fact(text)


@pytest.fixture(scope="module")
def shell_service():
    with ServiceThread(build_network("ring:5")) as service:
        yield service


@pytest.fixture
def shell(shell_service):
    out = io.StringIO()
    with ServiceClient(*shell_service.address) as client:
        yield ExspanShell(client, out=out, echo=False), out


class TestShellCommands:
    def test_unknown_command_prints_error(self, shell):
        repl, out = shell
        repl.handle("frobnicate everything")
        assert "unknown command" in out.getvalue()

    def test_unknown_special_prints_error(self, shell):
        repl, out = shell
        repl.handle("\\bogus")
        assert "unknown special" in out.getvalue()

    def test_service_error_is_printed_not_raised(self, shell):
        repl, out = shell
        repl.handle("tuples nonexistent")
        assert "error [query-error]" in out.getvalue()

    def test_help_lists_commands(self, shell):
        repl, out = shell
        repl.handle("\\help")
        text = out.getvalue()
        for needle in ("query", "\\prov", "\\explain", "\\trace", "\\shutdown"):
            assert needle in text

    def test_blank_and_comment_lines_ignored(self, shell):
        repl, out = shell
        repl.handle("")
        repl.handle("   ")
        repl.handle("# a comment")
        assert out.getvalue() == ""

    def test_quit_stops_the_loop(self, shell):
        repl, _ = shell
        assert repl.running
        repl.handle("\\q")
        assert not repl.running

    def test_completion_candidates_cover_tables_and_specs(self, shell):
        repl, _ = shell
        candidates = repl.completion_candidates()
        assert "bestPathCost" in candidates  # table names
        assert "polynomial" in candidates  # registered spec names
        assert "\\prov" in candidates  # specials
        assert "query" in candidates  # statements

    def test_trace_toggle(self, shell):
        repl, out = shell
        repl.handle("\\trace on")
        repl.handle("query bestPathCost(n0,n1,1)")
        assert "trace: issued=" in out.getvalue()
        repl.handle("\\trace off")
        assert repl.trace is False

    def test_snapshot_writes_checkpoint(self, shell_service, tmp_path):
        out = io.StringIO()
        path = str(tmp_path / "session.ckpt")
        with ServiceClient(*shell_service.address) as client:
            repl = ExspanShell(client, out=out, echo=False)
            repl.handle(f"\\snapshot {path}")
        assert f"snapshot: {path} (5 nodes," in out.getvalue()
        assert os.path.getsize(path) > 0

    def test_snapshot_requires_path(self, shell):
        repl, out = shell
        repl.handle("\\snapshot")
        assert "needs a file path" in out.getvalue()


class TestShellPager:
    def test_long_output_routes_through_pager_when_interactive(self, shell_service):
        out = io.StringIO()
        paged = []
        with ServiceClient(*shell_service.address) as client:
            repl = ExspanShell(
                client,
                out=out,
                echo=False,
                interactive=True,
                pager=paged.append,
                page_threshold=3,
            )
            repl.handle("tuples link")
        assert len(paged) == 1
        assert "link" in paged[0]
        assert "link" not in out.getvalue()

    def test_short_output_prints_directly(self, shell_service):
        out = io.StringIO()
        paged = []
        with ServiceClient(*shell_service.address) as client:
            repl = ExspanShell(
                client,
                out=out,
                echo=False,
                interactive=True,
                pager=paged.append,
                page_threshold=100,
            )
            repl.handle("tuples link")
        assert paged == []
        assert "link" in out.getvalue()

    def test_scripted_sessions_never_page(self, shell_service):
        out = io.StringIO()
        paged = []
        with ServiceClient(*shell_service.address) as client:
            repl = ExspanShell(
                client, out=out, echo=False, pager=paged.append, page_threshold=1
            )
            repl.handle("tuples link")
        assert paged == []
        assert "link" in out.getvalue()


def test_golden_transcript():
    """The committed transcript replays exactly against a fresh service."""
    commands = (GOLDEN_DIR / "shell_session.commands").read_text().splitlines()
    expected = (GOLDEN_DIR / "shell_session.txt").read_text()
    out = io.StringIO()
    with ServiceThread(build_network("ring:5")) as service:
        with ServiceClient(*service.address) as client:
            repl = ExspanShell(client, out=out, echo=True)
            repl.run_script(commands)
    assert out.getvalue() == expected
