"""Service equivalence gate: concurrent socket clients vs in-process calls.

The paper-level contract of the always-on service: putting a socket and
an event loop between the operator and the engine changes *nothing*
about query results.  Four concurrent clients issuing interleaved
queries must observe results whose canonical bytes (VIDs, annotations,
derivation order) are identical to the same queries executed serially
in-process on an identically constructed network.
"""

import threading

import pytest

from repro.core.api import ExspanNetwork
from repro.core.config import ExspanConfig
from repro.core.requests import QueryRequest, QueryResult, SpecDescriptor
from repro.net.topology import ring_topology
from repro.protocols.mincost import mincost_program
from repro.service import ServiceClient, ServiceThread

SPECS = [
    SpecDescriptor(kind="polynomial"),
    SpecDescriptor(kind="polynomial", traversal="dfs"),
    SpecDescriptor(kind="polynomial", max_depth=3),
    SpecDescriptor(kind="nodeset"),
    SpecDescriptor(kind="derivations"),
    SpecDescriptor(kind="derivability"),
]


def _network():
    network = ExspanNetwork(
        ring_topology(6, seed=0), mincost_program(), config=ExspanConfig(seed=0)
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


def _requests(network):
    """A deterministic mixed workload: every bestPathCost fact x every spec."""
    facts = sorted(
        (node, values) for node, values in network.tuples("bestPathCost")
    )[:8]
    requests = []
    for index, (node, values) in enumerate(facts):
        spec = SPECS[index % len(SPECS)]
        requests.append(
            {
                "fact": {"name": "bestPathCost", "values": list(values)},
                "spec": spec.to_dict(),
            }
        )
    return requests


@pytest.fixture(scope="module")
def serial_bodies():
    """Ground truth: the same workload executed serially in-process."""
    network = _network()
    bodies = {}
    for request in _requests(network):
        result = network.execute(QueryRequest.from_dict(request))
        key = (result.fact["name"], tuple(request["fact"]["values"]), result.spec)
        bodies[key] = result.canonical_bytes()
    return bodies


def _client_worker(address, requests, barrier, outputs, index):
    with ServiceClient(*address) as client:
        barrier.wait(timeout=30)
        collected = []
        # Each client walks the workload from a different offset so the
        # interleaving across clients is genuinely mixed.
        for step in range(len(requests)):
            request = requests[(index + step) % len(requests)]
            payload = client.call("query", **request)
            collected.append((request, payload))
        outputs[index] = collected


def test_concurrent_clients_byte_identical_to_serial(serial_bodies):
    network = _network()
    requests = _requests(network)
    client_count = 4
    with ServiceThread(network) as service:
        barrier = threading.Barrier(client_count)
        outputs = [None] * client_count
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(service.address, requests, barrier, outputs, index),
            )
            for index in range(client_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "client thread wedged"

    checked = 0
    for collected in outputs:
        assert collected is not None, "a client produced no output"
        for request, payload in collected:
            result = QueryResult.from_dict(payload)
            key = (
                result.fact["name"],
                tuple(request["fact"]["values"]),
                result.spec,
            )
            assert result.canonical_bytes() == serial_bodies[key]
            checked += 1
    # 4 clients x 8 requests each: the whole matrix was exercised.
    assert checked == client_count * len(requests)


def test_single_client_matches_in_process(serial_bodies):
    network = _network()
    requests = _requests(network)
    with ServiceThread(network) as service:
        with ServiceClient(*service.address) as client:
            for request in requests:
                payload = client.call("query", **request)
                result = QueryResult.from_dict(payload)
                key = (
                    result.fact["name"],
                    tuple(request["fact"]["values"]),
                    result.spec,
                )
                assert result.canonical_bytes() == serial_bodies[key]


def test_mutations_visible_across_clients():
    """One client's insert is visible to another client's query."""
    network = _network()
    with ServiceThread(network) as service:
        with (
            ServiceClient(*service.address) as writer,
            ServiceClient(*service.address) as reader,
        ):
            before = {tuple(row) for _, row in network_rows(reader, "link")}
            writer.call("insert", fact={"name": "link", "values": ["n0", "n3", 7]})
            writer.call("fixpoint")
            after = {tuple(row) for _, row in network_rows(reader, "link")}
            assert ("n0", "n3", 7) not in before
            assert ("n0", "n3", 7) in after
            writer.call("delete", fact={"name": "link", "values": ["n0", "n3", 7]})
            writer.call("fixpoint")
            final = {tuple(row) for _, row in network_rows(reader, "link")}
            assert ("n0", "n3", 7) not in final


def network_rows(client, table):
    return [(node, tuple(values)) for node, values in client.call("tuples", table=table)["rows"]]


def test_stats_and_metrics_snapshots_are_detached():
    """Satellite gate: snapshot ops hand back deep copies, not live state."""
    network = _network()
    live = network.stats
    snap = network.stats_snapshot()
    snap["messages_sent"] = -1
    snap.setdefault("kind_totals", {}).clear()
    assert live.snapshot()["messages_sent"] != -1
    assert network.stats_snapshot()["kind_totals"]

    metrics = network.metrics_snapshot()
    metrics["counters"].clear()
    assert network.metrics_snapshot()["counters"]


def test_per_request_spans_get_fresh_traces():
    """Each wire request is a root span in its own trace (obs integration)."""
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    network = ExspanNetwork(
        ring_topology(4, seed=0),
        mincost_program(),
        config=ExspanConfig(seed=0),
        tracer=tracer,
    )
    network.seed_links()
    network.run_to_fixpoint()
    with ServiceThread(network) as service:
        with ServiceClient(*service.address) as client:
            client.call("ping")
            client.call(
                "query",
                fact={"name": "bestPathCost", "values": ["n0", "n1", 1]},
                spec={"kind": "polynomial"},
            )
    request_spans = [
        span for span in tracer.spans if span.cat == "service" and span.name.startswith("service.")
    ]
    names = {span.name for span in request_spans}
    assert "service.ping" in names
    assert "service.query" in names
    trace_ids = [span.trace_id for span in request_spans]
    assert len(trace_ids) == len(set(trace_ids)), "requests must not share a trace"
    assert all(span.parent_id is None for span in request_spans), "request spans are roots"


def test_graceful_shutdown_drains():
    """A shutdown request stops the server; clients get a clean close."""
    network = _network()
    service = ServiceThread(network)
    service.start()
    with ServiceClient(*service.address) as client:
        assert client.call("ping")["now"] >= 0
        assert client.shutdown_server()["stopping"] is True
    service.stop()
    with pytest.raises(OSError):
        ServiceClient(*service.address, timeout=2)
