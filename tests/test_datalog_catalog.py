"""Unit and property-based tests for per-node relation storage."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.datalog.ast import TableDecl
from repro.datalog.catalog import Catalog, Table
from repro.datalog.errors import SchemaError


class TestTableBasics:
    def test_insert_and_contains(self):
        table = Table("link")
        outcome = table.insert(("a", "b", 1))
        assert outcome.became_visible
        assert ("a", "b", 1) in table
        assert len(table) == 1

    def test_duplicate_insert_increments_count_without_visibility(self):
        table = Table("pathCost")
        assert table.insert(("a", "c", 5)).became_visible
        assert not table.insert(("a", "c", 5)).became_visible
        assert table.count(("a", "c", 5)) == 2
        assert len(table) == 1

    def test_delete_decrements_until_invisible(self):
        table = Table("pathCost")
        table.insert(("a", "c", 5))
        table.insert(("a", "c", 5))
        assert not table.delete(("a", "c", 5)).became_invisible
        outcome = table.delete(("a", "c", 5))
        assert outcome.became_invisible
        assert ("a", "c", 5) not in table

    def test_delete_absent_row(self):
        table = Table("link")
        outcome = table.delete(("x", "y", 1))
        assert not outcome.was_present
        assert not outcome.became_invisible

    def test_delete_all_removes_all_derivations(self):
        table = Table("pathCost")
        for _ in range(3):
            table.insert(("a", "c", 5))
        assert table.delete_all(("a", "c", 5)).became_invisible
        assert table.count(("a", "c", 5)) == 0

    def test_arity_checked(self):
        table = Table("link", arity=3)
        with pytest.raises(SchemaError):
            table.insert(("a", "b"))

    def test_arity_inferred_from_first_insert(self):
        table = Table("link")
        table.insert(("a", "b", 1))
        with pytest.raises(SchemaError):
            table.insert(("a", "b"))

    def test_lists_are_frozen_for_storage(self):
        table = Table("path")
        table.insert(("a", "b", ["a", "x", "b"]))
        rows = list(table.rows())
        assert rows[0][2] == ("a", "x", "b")

    def test_clear(self):
        table = Table("link")
        table.insert(("a", "b", 1))
        table.clear()
        assert len(table) == 0


class TestPrimaryKeys:
    def test_key_update_replaces_row(self):
        table = Table("bestHop", key_positions=(0, 1))
        table.insert(("a", "d", "b"))
        outcome = table.insert(("a", "d", "c"))
        assert outcome.became_visible
        assert outcome.replaced is not None
        assert outcome.replaced.values == ("a", "d", "b")
        assert ("a", "d", "b") not in table
        assert ("a", "d", "c") in table
        assert len(table) == 1

    def test_same_row_reinsert_does_not_replace(self):
        table = Table("bestHop", key_positions=(0, 1))
        table.insert(("a", "d", "b"))
        outcome = table.insert(("a", "d", "b"))
        assert outcome.replaced is None
        assert not outcome.became_visible

    def test_different_keys_coexist(self):
        table = Table("bestHop", key_positions=(0, 1))
        table.insert(("a", "d", "b"))
        table.insert(("a", "e", "c"))
        assert len(table) == 2

    def test_delete_clears_key_index(self):
        table = Table("bestHop", key_positions=(0, 1))
        table.insert(("a", "d", "b"))
        table.delete(("a", "d", "b"))
        outcome = table.insert(("a", "d", "c"))
        assert outcome.replaced is None


class TestLookup:
    def test_lookup_by_position(self):
        table = Table("prov")
        table.insert(("a", "vid1", "rid1", "a"))
        table.insert(("a", "vid1", "rid2", "b"))
        table.insert(("a", "vid2", "rid3", "a"))
        rows = list(table.lookup({1: "vid1"}))
        assert len(rows) == 2

    def test_lookup_multiple_positions(self):
        table = Table("link")
        table.insert(("a", "b", 1))
        table.insert(("a", "c", 1))
        rows = list(table.lookup({0: "a", 1: "c"}))
        assert rows == [("a", "c", 1)]

    def test_lookup_without_constraints_returns_all(self):
        table = Table("link")
        table.insert(("a", "b", 1))
        table.insert(("b", "c", 1))
        assert len(list(table.lookup({}))) == 2

    def test_index_maintained_across_insert_delete(self):
        table = Table("prov")
        table.insert(("a", "v1", "r1", "a"))
        list(table.lookup({1: "v1"}))  # force index creation
        table.insert(("a", "v1", "r2", "b"))
        table.delete(("a", "v1", "r1", "a"))
        rows = list(table.lookup({1: "v1"}))
        assert rows == [("a", "v1", "r2", "b")]

    def test_lookup_list_valued_constraint(self):
        table = Table("ruleExec")
        table.insert(("a", "r1", "sp1", ["v1", "v2"]))
        rows = list(table.lookup({3: ["v1", "v2"]}))
        assert len(rows) == 1


class TestCatalog:
    def test_table_created_on_demand(self):
        catalog = Catalog()
        table = catalog.table("link", 3)
        assert catalog.has_table("link")
        assert catalog["link"] is table

    def test_declared_tables_respect_keys(self):
        catalog = Catalog([TableDecl("bestHop", 3, (0, 1))])
        table = catalog.table("bestHop")
        assert table.key_positions == (0, 1)

    def test_total_rows_and_names(self):
        catalog = Catalog()
        catalog.table("a").insert((1,))
        catalog.table("b").insert((1, 2))
        catalog.table("b").insert((3, 4))
        assert catalog.total_rows() == 3
        assert catalog.names() == ["a", "b"]
        assert "a" in catalog


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=60))
    def test_count_matches_multiset_semantics(self, operations):
        """Random insert sequences: table count equals multiset count."""
        from collections import Counter

        table = Table("t", arity=2)
        reference: Counter = Counter()
        for row in operations:
            table.insert(row)
            reference[row] += 1
        for row, count in reference.items():
            assert table.count(row) == count
        assert len(table) == len(reference)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 3)),
            max_size=80,
        )
    )
    def test_visibility_transitions_match_reference_counter(self, operations):
        from collections import Counter

        table = Table("t", arity=1)
        reference: Counter = Counter()
        for action, value in operations:
            row = (value,)
            if action == "insert":
                outcome = table.insert(row)
                assert outcome.became_visible == (reference[row] == 0)
                reference[row] += 1
            else:
                outcome = table.delete(row)
                if reference[row] == 0:
                    assert not outcome.was_present
                else:
                    reference[row] -= 1
                    assert outcome.became_invisible == (reference[row] == 0)
        visible = {row for row, count in reference.items() if count > 0}
        assert set(table.rows()) == visible
