"""Unit tests for the cost-based planner subsystem (repro.datalog.plan)."""

from __future__ import annotations

import pytest

from repro.datalog import Fact, NDlogEngine, parse_program, parse_rule
from repro.datalog.ast import Atom, Rule, TableDecl
from repro.datalog.catalog import Catalog, Table
from repro.datalog.errors import SchemaError, ValidationError
from repro.datalog.plan import (
    CatalogStatistics,
    CostModel,
    GreedyOptimizer,
    IndexManager,
    PlanCompiler,
    construct_join_graph,
    explain_plan,
    normalize_rule,
)
from repro.datalog.terms import BinaryOp, Constant, Variable


# ---------------------------------------------------------------------- #
# normalization
# ---------------------------------------------------------------------- #
class TestNormalize:
    def test_variable_constant_and_wildcard_positions(self):
        rule = parse_rule('t1 head(@A,D) :- edge(@A,B,5), path(@B,D,_), D != A.')
        normalized = normalize_rule(rule)
        assert normalized.atom_count == 2
        edge, path = normalized.atoms
        assert edge.name == "edge" and edge.position == 0
        assert edge.var_positions == {"A": (0,), "B": (1,)}
        assert edge.const_positions == {2: 5}
        assert path.var_positions == {"B": (0,), "D": (1,)}
        # the wildcard in position 2 binds nothing
        assert "_" not in path.var_positions
        assert path.const_positions == {}

    def test_repeated_variable_records_both_positions(self):
        rule = parse_rule("t2 out(@A) :- loop(@A,A).")
        signature = normalize_rule(rule).atoms[0]
        assert signature.var_positions == {"A": (0, 1)}

    def test_expression_argument_positions(self):
        head = Atom("out", (Variable("A"),))
        body_atom = Atom("t", (Variable("A"), Variable("B")))
        expr_atom = Atom(
            "q", (Variable("A"), BinaryOp("+", Variable("B"), Constant(1)))
        )
        rule = Rule("t3", head, (body_atom, expr_atom))
        signature = normalize_rule(rule).atoms[1]
        assert signature.expr_positions == {1: frozenset({"B"})}

    def test_literals_in_body_order_with_reads_and_binds(self):
        rule = parse_rule(
            "t4 out(@A,C) :- t(@A,B), C = B + 1, C < 10, u(@A,C)."
        )
        normalized = normalize_rule(rule)
        assignment, condition = normalized.literals
        assert assignment.binds == "C" and assignment.reads == {"B"}
        assert condition.binds is None and condition.reads == {"C"}

    def test_evaluable_literal_prefix_stops_at_first_blocked_literal(self):
        rule = parse_rule(
            "t5 out(@A,C) :- t(@A,B), C = D + 1, B < 9, u(@A,D)."
        )
        normalized = normalize_rule(rule)
        # D is not bound after the trigger atom, so nothing is evaluable even
        # though the later condition B < 9 would be: literals apply in order.
        assert normalized.evaluable_literal_prefix(frozenset({"A", "B"})) == 0
        assert normalized.evaluable_literal_prefix(frozenset({"A", "B", "D"})) == 2


# ---------------------------------------------------------------------- #
# join graph
# ---------------------------------------------------------------------- #
class TestJoinGraph:
    def test_edges_label_shared_variables(self):
        rule = parse_rule("j1 out(@A,D) :- t(@A,B), p(@B,C), q(@C,D).")
        graph = construct_join_graph(normalize_rule(rule))
        assert graph.shared_variables(0, 1) == {"B"}
        assert graph.shared_variables(1, 2) == {"C"}
        assert graph.shared_variables(0, 2) == frozenset()
        assert graph.neighbors(1) == {0, 2}
        assert graph.is_connected()

    def test_disconnected_body_reports_components(self):
        rule = parse_rule("j2 out(@A,C) :- t(@A,B), lonely(@C,D).")
        graph = construct_join_graph(normalize_rule(rule))
        assert not graph.is_connected()
        assert graph.components() == [frozenset({0}), frozenset({1})]
        assert not graph.is_connected_to(1, {0})


# ---------------------------------------------------------------------- #
# cost model
# ---------------------------------------------------------------------- #
def _catalog_with(name: str, rows: int, arity: int = 2, keys=()) -> Catalog:
    catalog = Catalog()
    catalog.declare(TableDecl(name, arity, keys))
    table = catalog.table(name)
    for i in range(rows):
        table.insert(tuple(f"v{i}-{j}" for j in range(arity)))
    return catalog


class TestCostModel:
    def test_unbound_lookup_is_a_full_scan(self):
        catalog = _catalog_with("r", 40)
        model = CostModel(CatalogStatistics(catalog))
        signature = normalize_rule(parse_rule("c1 out(@A) :- t(@A,B), r(@C,D).")).atoms[1]
        estimate = model.estimate(signature, frozenset({"A", "B"}))
        assert estimate.full_scan and estimate.rows == 40.0

    def test_each_bound_position_applies_selectivity(self):
        catalog = _catalog_with("r", 100)
        model = CostModel(CatalogStatistics(catalog), selectivity=0.1)
        signature = normalize_rule(parse_rule("c2 out(@A) :- t(@A,B), r(@A,B).")).atoms[1]
        one = model.estimate(signature, frozenset({"A"}))
        both = model.estimate(signature, frozenset({"A", "B"}))
        assert one.bound_positions == (0,) and one.rows == pytest.approx(10.0)
        assert both.bound_positions == (0, 1) and both.rows == pytest.approx(1.0)

    def test_primary_key_coverage_caps_the_estimate_at_one(self):
        catalog = _catalog_with("r", 500, arity=3, keys=(0, 1))
        model = CostModel(CatalogStatistics(catalog))
        signature = normalize_rule(
            parse_rule("c3 out(@A) :- t(@A,B), r(@A,B,C).")
        ).atoms[1]
        estimate = model.estimate(signature, frozenset({"A", "B"}))
        assert estimate.key_covered and estimate.rows == 1.0

    def test_rejects_nonsense_selectivity(self):
        catalog = Catalog()
        with pytest.raises(ValueError):
            CostModel(CatalogStatistics(catalog), selectivity=0.0)


# ---------------------------------------------------------------------- #
# greedy ordering
# ---------------------------------------------------------------------- #
class TestGreedyOrdering:
    RULE = "g1 out(@A,D) :- t(@A,B,C), big(@B,D), small(@C,D)."

    def _optimizer(self, big_rows: int, small_rows: int):
        catalog = Catalog()
        catalog.declare(TableDecl("t", 3))
        catalog.declare(TableDecl("big", 2))
        catalog.declare(TableDecl("small", 2))
        for i in range(big_rows):
            catalog.table("big").insert((f"b{i}", f"d{i}"))
        for i in range(small_rows):
            catalog.table("small").insert((f"c{i}", f"d{i}"))
        statistics = CatalogStatistics(catalog)
        return GreedyOptimizer(CostModel(statistics)), catalog

    def test_skewed_cardinalities_put_the_small_relation_first(self):
        optimizer, _ = self._optimizer(big_rows=200, small_rows=3)
        rule = parse_rule(self.RULE)
        normalized = normalize_rule(rule)
        graph = construct_join_graph(normalized)
        order = optimizer.order(normalized, graph, 0)
        # naive body order would scan `big` first; greedy flips the order
        assert order.positions == (2, 1)

    def test_reversed_skew_reverses_the_order(self):
        optimizer, _ = self._optimizer(big_rows=3, small_rows=200)
        rule = parse_rule(self.RULE)
        normalized = normalize_rule(rule)
        graph = construct_join_graph(normalized)
        order = optimizer.order(normalized, graph, 0)
        assert order.positions == (1, 2)

    def test_connected_atoms_beat_disconnected_ones(self):
        rule = parse_rule("g2 out(@A,B,C) :- t(@A,B), lonely(@C,D), near(@B,E).")
        catalog = Catalog()
        for name, arity in (("t", 2), ("lonely", 2), ("near", 2)):
            catalog.declare(TableDecl(name, arity))
        catalog.table("lonely").insert(("c", "d"))  # tiny but disconnected
        for i in range(50):
            catalog.table("near").insert((f"b{i}", f"e{i}"))
        optimizer = GreedyOptimizer(CostModel(CatalogStatistics(catalog)))
        normalized = normalize_rule(rule)
        order = optimizer.order(normalized, construct_join_graph(normalized), 0)
        assert order.positions == (2, 1)
        assert order.steps[0].connected and not order.steps[1].connected

    def test_ties_fall_back_to_body_order(self):
        optimizer, _ = self._optimizer(big_rows=0, small_rows=0)
        rule = parse_rule(self.RULE)
        normalized = normalize_rule(rule)
        order = optimizer.order(normalized, construct_join_graph(normalized), 0)
        assert order.positions == (1, 2)


# ---------------------------------------------------------------------- #
# secondary indexes
# ---------------------------------------------------------------------- #
class TestIndexMaintenance:
    def test_require_builds_once_and_counts(self):
        catalog = Catalog()
        catalog.declare(TableDecl("r", 2))
        manager = IndexManager(catalog)
        assert manager.require("r", (1, 0)) == (0, 1)
        assert manager.require("r", (0, 1)) == (0, 1)
        assert manager.counters["indexes_registered"] == 1
        assert catalog.table("r").has_index((0, 1))

    def test_index_stays_consistent_under_derivation_counted_deletes(self):
        table = Table("r", 2)
        table.ensure_index((0,))
        table.insert(("a", 1))
        table.insert(("a", 1))  # second derivation of the same fact
        table.insert(("a", 2))
        assert sorted(table.lookup({0: "a"})) == [("a", 1), ("a", 2)]
        table.delete(("a", 1))  # count 2 -> 1: still visible
        assert sorted(table.lookup({0: "a"})) == [("a", 1), ("a", 2)]
        table.delete(("a", 1))  # count 1 -> 0: gone from the index too
        assert sorted(table.lookup({0: "a"})) == [("a", 2)]
        table.delete(("a", 2))
        assert list(table.lookup({0: "a"})) == []
        assert table.index_size((0,)) == 0

    def test_primary_key_replacement_updates_the_index(self):
        table = Table("r", 3, key_positions=(0, 1))
        table.ensure_index((0,))
        table.insert(("a", "b", 1))
        outcome = table.insert(("a", "b", 2))
        assert outcome.replaced is not None
        assert list(table.lookup({0: "a"})) == [("a", "b", 2)]

    def test_indexed_lookup_preserves_insertion_order(self):
        # Planned (indexed) and naive (full scan) evaluation must enumerate
        # candidate rows identically, or equal-cost ties break differently.
        table = Table("r", 2)
        table.ensure_index((0,))
        rows = [("a", i) for i in (3, 1, 2, 0)]
        for row in rows:
            table.insert(row)
        assert list(table.lookup({0: "a"})) == rows
        table.delete(("a", 1))
        table.insert(("a", 1))  # re-insertion moves the row to the end
        assert list(table.lookup({0: "a"})) == [("a", 3), ("a", 2), ("a", 0), ("a", 1)]
        assert list(table.lookup({0: "a"})) == [r for r in table.rows() if r[0] == "a"]

    def test_ensure_index_validates_positions(self):
        table = Table("r", 2)
        with pytest.raises(SchemaError):
            table.ensure_index((5,))
        with pytest.raises(SchemaError):
            table.ensure_index((-1,))


# ---------------------------------------------------------------------- #
# compiled plans and the engine integration
# ---------------------------------------------------------------------- #
class TestCompiledPlans:
    def test_engine_compiles_one_plan_per_rule_and_position(self):
        engine = NDlogEngine("a", planner="greedy")
        engine.load_program(
            parse_program("p1 out(@A,C) :- t(@A,B), u(@B,C).")
        )
        assert engine.stats["plans_compiled"] == 2
        assert engine.stats["indexes_registered"] >= 1

    def test_invalid_planner_name_is_rejected(self):
        with pytest.raises(ValidationError):
            NDlogEngine("a", planner="quadratic")

    def test_stale_plan_is_recompiled_when_cardinalities_drift(self):
        engine = NDlogEngine("a", planner="greedy")
        engine.load_program(
            parse_program("p2 out(@A,D) :- t(@A,B), u(@B,C), v(@C,D).")
        )
        # fill u far beyond the (empty) compile-time snapshot, bypassing the
        # evaluation loop so no plan executes while we do it
        for i in range(64):
            engine.catalog.table("u").insert((f"b{i}", f"c{i}"))
        engine.insert(Fact("t", ("a", "b0")))
        engine.run()
        assert engine.stats["plans_recompiled"] >= 1

    def test_condition_pushdown_skips_doomed_scans(self):
        program = parse_program("p3 out(@A,B) :- t(@A,C), u(@A,B), C < 5.")
        greedy = NDlogEngine("a", planner="greedy", program=program)
        naive = NDlogEngine("a", planner="naive", program=program)
        for engine in (greedy, naive):
            for i in range(20):
                engine.catalog.table("u").insert(("a", f"b{i}"))
            engine.insert(Fact("t", ("a", 99)))  # fails C < 5
            engine.run()
        assert greedy.table_rows("out") == naive.table_rows("out") == []
        # the pushed-down condition prunes before u is ever scanned
        assert greedy.stats["tuples_scanned"] == 0
        assert naive.stats["tuples_scanned"] == 20

    def test_expression_arguments_become_lookup_constraints(self):
        program = parse_program("p4 out(@A,B) :- t(@A,B), u(@A, B + 1).")
        greedy = NDlogEngine("a", planner="greedy", program=program)
        naive = NDlogEngine("a", planner="naive", program=program)
        for engine in (greedy, naive):
            for i in range(10):
                engine.catalog.table("u").insert(("a", i))
            engine.insert(Fact("t", ("a", 3)))
            engine.run()
        assert greedy.table_rows("out") == naive.table_rows("out") == [("a", 3)]
        # greedy looks up u on both positions; naive examines all ten rows
        assert greedy.stats["tuples_scanned"] == 1
        assert naive.stats["tuples_scanned"] == 10

    def test_failing_expression_constraint_falls_back_to_registered_index(self):
        # B / 2 raises EvaluationError for a string B: the lookup must fall
        # back to the var-only constraint set — whose index the compiler
        # pre-registered — and reject rows per-row exactly like naive.
        program = parse_program("p7 out(@A,B) :- t(@A,B), u(@A, B / 2).")
        greedy = NDlogEngine("a", planner="greedy", program=program)
        naive = NDlogEngine("a", planner="naive", program=program)
        assert greedy.index_manager.is_registered("u", (0, 1))
        assert greedy.index_manager.is_registered("u", (0,))  # the fallback
        for engine in (greedy, naive):
            for i in range(4):
                engine.catalog.table("u").insert(("a", i))
            engine.insert(Fact("t", ("a", "oops")))
            engine.run()
        assert greedy.table_rows("out") == naive.table_rows("out") == []
        # no untracked index appeared beyond the two the planner registered
        assert greedy.catalog.table("u").index_position_sets() == [(0,), (0, 1)]

    def test_assignment_only_prefixes_are_not_pushed_down(self):
        # An evaluable prefix of pure assignments cannot prune, and finalize
        # re-evaluates literals anyway — the compiler must not schedule it.
        engine = NDlogEngine("a", planner="greedy")
        engine.load_program(
            parse_program("p8 out(@A,C) :- t(@A,B), C = B + 1, u(@A,C).")
        )
        plan = next(
            p for p in engine._plans.values() if p.trigger_position == 0
        )
        assert plan.initial_literal_prefix == 0

    def test_explain_describes_the_chosen_plan(self):
        engine = NDlogEngine("a", planner="greedy")
        engine.load_program(
            parse_program("p5 out(@A,C) :- t(@A,B), u(@B,C), C != A.")
        )
        text = engine.explain("p5")
        assert "rule p5" in text
        assert "delta on t" in text and "delta on u" in text
        assert "index(0,)" in text
        assert "est_rows" in text
        # unknown labels and the naive planner degrade gracefully
        assert "no compiled plans" in engine.explain("nope")
        assert "nested-loop" in NDlogEngine("b", planner="naive").explain()

    def test_duplicate_rule_labels_across_programs_keep_separate_plans(self):
        # load_program may be called more than once; two distinct rules that
        # happen to share a label must not clobber each other's plans.
        for planner in ("greedy", "naive"):
            engine = NDlogEngine("a", planner=planner)
            engine.load_program(parse_program("r1 out1(@A,B) :- t(@A,B)."))
            engine.load_program(parse_program("r1 out2(@A,B) :- t(@A,B)."))
            engine.insert(Fact("t", ("a", "x")))
            engine.run()
            assert engine.table_rows("out1") == [("a", "x")], planner
            assert engine.table_rows("out2") == [("a", "x")], planner

    def test_plan_compiler_is_reusable_across_positions(self):
        catalog = Catalog()
        catalog.declare(TableDecl("t", 2))
        catalog.declare(TableDecl("u", 2))
        statistics = CatalogStatistics(catalog)
        compiler = PlanCompiler(statistics, IndexManager(catalog))
        rule = parse_rule("p6 out(@A,C) :- t(@A,B), u(@B,C).")
        plan0 = compiler.compile(rule, 0)
        plan1 = compiler.compile(rule, 1)
        assert plan0.steps[0].atom.name == "u"
        assert plan1.steps[0].atom.name == "t"
        assert "emit" in explain_plan(plan0)
