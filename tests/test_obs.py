"""The observability subsystem: tracer, metrics, exporters, determinism.

The headline contract under test is the one ISSUE 6 states: **tracing
never perturbs results**.  A traced run must produce bit-identical
fixpoints, provenance state, counters and artifacts to an untraced run —
at any shard count — because span timestamps come from simulated time and
no instrumentation writes into fingerprinted counters.  Also covered:
span causality (nesting, explicit contexts, cross-host trace-id
propagation over the query protocol), the bounded span buffer, the
Chrome trace-event exporter and its schema validator, the labelled
metrics registry, bounded traffic statistics, and the orchestrator's
``--trace`` capture path.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode
from repro.core.customizations import derivation_count_query
from repro.datalog.ast import Fact
from repro.net.message import TRACE_CONTEXT_KEY, payload_size
from repro.net.sharding import ShardedExspanNetwork, collect_digest, collect_summary
from repro.net.stats import TrafficStats
from repro.net.topology import cluster_topology, ring_topology
from repro.obs import (
    MetricsRegistry,
    Tracer,
    active_session,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    merged_counters,
    phase_breakdown,
    phase_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.obs.export import load_trace, summarize_trace_events
from repro.protocols import mincost_program


class FakeClock:
    """A hand-cranked simulated clock for tracer unit tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------- #
# tracer core
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_nested_spans_link_to_enclosing_parent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", cat="a") as outer:
            clock.now = 1.0
            with tracer.span("inner", cat="b") as inner:
                clock.now = 3.0
        assert inner.parent_id == outer.span_id
        records = {record.name: record for record in tracer.spans}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["inner"].ts == 1.0
        assert records["inner"].dur == 2.0
        assert records["outer"].ts == 0.0
        assert records["outer"].dur == 3.0

    def test_explicit_trace_context_overrides_stack(self):
        tracer = Tracer()
        trace_id = tracer.new_trace()
        with tracer.span("enclosing"):
            span = tracer.begin("async", trace=(trace_id, "s9.9"))
            span.end()
        record = next(r for r in tracer.spans if r.name == "async")
        assert record.trace_id == trace_id
        assert record.parent_id == "s9.9"

    def test_ids_are_shard_scoped_and_unique(self):
        tracer = Tracer(shard=3)
        first = tracer.span("a")
        second = tracer.span("b")
        assert first.span_id == "s3.1"
        assert second.span_id == "s3.2"
        assert tracer.new_trace() == "t3.1"
        assert tracer.new_trace() == "t3.2"

    def test_span_context_falls_back_to_own_id(self):
        tracer = Tracer()
        root = tracer.begin("root", trace=(tracer.new_trace(), None))
        child_context = root.context()
        assert child_context == (root.trace_id, root.span_id)
        orphan = tracer.begin("orphan")
        assert orphan.context() == (orphan.span_id, orphan.span_id)

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("once")
        span.end()
        span.end()
        assert len(tracer) == 1

    def test_negative_durations_clamp_to_zero(self):
        # A clock that (pathologically) moves backwards must not emit a
        # negative dur — the Chrome schema rejects it.
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.now = 5.0
        span = tracer.begin("backwards")
        clock.now = 4.0
        span.end()
        assert tracer.spans[0].dur == 0.0

    def test_cap_drops_records_but_aggregates_stay_exact(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            tracer.begin("phase", cat="x").end()
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 3
        aggregates = tracer.phase_aggregates()
        assert aggregates["phase"]["count"] == 5
        assert aggregates["phase"]["cat"] == "x"

    def test_export_absorb_and_deterministic_merge_order(self):
        left_clock, right_clock = FakeClock(), FakeClock()
        left = Tracer(clock=left_clock, shard=0)
        right = Tracer(clock=right_clock, shard=1)
        left_clock.now = 2.0
        left.begin("late", cat="x").end()
        right_clock.now = 1.0
        right.begin("early", cat="x").end()
        right_clock.now = 2.0
        right.begin("tied", cat="x").end()

        driver = Tracer(shard=-1)
        driver.absorb(right.export_state())
        driver.absorb(left.export_state())
        names = [record.name for record in driver.sorted_spans()]
        # (ts, shard, seq): shard 0's record wins the ts=2.0 tie.
        assert names == ["early", "late", "tied"]
        assert driver.phase_aggregates()["early"]["count"] == 1
        assert driver.dropped_spans == 0

    def test_args_are_sorted_tuples(self):
        tracer = Tracer()
        span = tracer.begin("argy", zeta=1, alpha=2)
        span.add(mid=3)
        span.end(omega=4)
        record = tracer.spans[0]
        assert record.args == (("alpha", 2), ("mid", 3), ("omega", 4), ("zeta", 1))


class TestTraceSession:
    def test_enable_is_idempotent_and_disable_clears(self):
        try:
            session = enable_tracing()
            assert enable_tracing() is session
            assert active_session() is session
        finally:
            disable_tracing()
        assert active_session() is None

    def test_session_merges_all_tracers(self):
        try:
            session = enable_tracing()
            a_clock, b_clock = FakeClock(), FakeClock()
            a = session.new_tracer(clock=a_clock, shard=0)
            b = session.new_tracer(clock=b_clock, shard=1)
            b_clock.now = 1.0
            b.begin("second", cat="x").end()
            a.begin("first", cat="x").end()
            names = [record.name for record in session.span_records()]
            assert names == ["first", "second"]
            aggregates = session.phase_aggregates()
            assert aggregates["first"]["count"] == 1
            assert session.dropped_spans() == 0
        finally:
            disable_tracing()


# ---------------------------------------------------------------------- #
# metrics
# ---------------------------------------------------------------------- #
class TestMergedCounters:
    def test_sums_same_keys(self):
        assert merged_counters([{"a": 1, "b": 2}, {"a": 3}]) == {"a": 4, "b": 2}

    def test_schema_keys_lead_in_declaration_order(self):
        merged = merged_counters([{"z": 1}, {"m": 2}], schema=("b", "a"))
        assert list(merged) == ["b", "a", "z", "m"]
        assert merged == {"b": 0, "a": 0, "z": 1, "m": 2}

    def test_extras_keep_first_appearance_order(self):
        merged = merged_counters([{"z": 1, "a": 1}, {"m": 1, "z": 1}])
        assert list(merged) == ["z", "a", "m"]

    def test_sorted_mode_is_hash_seed_independent(self):
        merged = merged_counters([{"z": 1}, {"a": 2}], sort=True)
        assert list(merged) == ["a", "z"]


class TestMetricsRegistry:
    def test_counters_with_labels_render_canonically(self):
        registry = MetricsRegistry()
        registry.inc("net.bytes", 10, kind="delta")
        registry.inc("net.bytes", 5, kind="delta")
        registry.inc("net.bytes", 7, kind="prov")
        assert registry.counter_value("net.bytes", kind="delta") == 15
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {
            "net.bytes{kind=delta}": 15,
            "net.bytes{kind=prov}": 7,
        }

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.inc("x", 1, b="2", a="1")
        registry.inc("x", 1, a="1", b="2")
        assert registry.counter_value("x", a="1", b="2") == 2
        assert list(registry.snapshot()["counters"]) == ["x{a=1,b=2}"]

    def test_histograms_track_count_sum_min_max_mean(self):
        registry = MetricsRegistry()
        for value in (2.0, 4.0, 9.0):
            registry.observe("latency", value)
        series = registry.snapshot()["histograms"]["latency"]
        assert series == {"count": 3, "sum": 15.0, "min": 2.0, "max": 9.0, "mean": 5.0}

    def test_merge_snapshots_folds_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        a.set_gauge("g", 3)
        b.set_gauge("g", 7)
        a.observe("h", 1.0)
        b.observe("h", 5.0)
        merged = MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 3
        assert merged["gauges"]["g"] == 7  # gauges take the high-water mark
        assert merged["histograms"]["h"] == {
            "count": 2,
            "sum": 6.0,
            "min": 1.0,
            "max": 5.0,
            "mean": 3.0,
        }

    def test_from_counters_prefixes_legacy_dicts(self):
        registry = MetricsRegistry.from_counters(
            {"tuples_scanned": 10}, prefix="engine."
        )
        assert registry.counter_value("engine.tuples_scanned") == 10

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("a", 1, host="n0")
        registry.set_gauge("b", 2.5)
        registry.observe("c", 1.0)
        json.dumps(registry.snapshot())


# ---------------------------------------------------------------------- #
# bounded traffic statistics (satellite)
# ---------------------------------------------------------------------- #
class TestBoundedTrafficStats:
    def _fill(self, stats):
        stats.record(0.0, "a", "b", 100, "delta")
        stats.record(1.0, "a", "c", 50, "prov")
        stats.record(2.0, "b", "c", 25, "delta")
        stats.record(3.0, "b", "a", 10, "delta")

    def test_aggregates_stay_exact_past_the_cap(self):
        bounded, unbounded = TrafficStats(max_records=2), TrafficStats()
        self._fill(bounded)
        self._fill(unbounded)
        assert len(bounded) == 2
        assert bounded.dropped_records == 2
        for kinds in (None, ["delta"], ["prov"]):
            assert bounded.total_bytes(kinds) == unbounded.total_bytes(kinds)
            assert bounded.total_messages(kinds) == unbounded.total_messages(kinds)
            assert bounded.bytes_by_sender(kinds) == unbounded.bytes_by_sender(kinds)
            assert bounded.last_activity_time(kinds) == unbounded.last_activity_time(
                kinds
            )
        assert bounded.kind_totals() == unbounded.kind_totals()
        assert bounded.average_bytes_per_node(4) == unbounded.average_bytes_per_node(4)

    def test_zero_cap_keeps_no_records_but_counts_everything(self):
        stats = TrafficStats(max_records=0)
        self._fill(stats)
        assert len(stats) == 0
        assert stats.dropped_records == 4
        assert stats.total_bytes() == 185
        assert stats.messages_sent == 4

    def test_reset_clears_streaming_aggregates(self):
        stats = TrafficStats(max_records=1)
        self._fill(stats)
        stats.reset()
        assert stats.total_bytes() == 0
        assert stats.dropped_records == 0
        assert stats.kind_totals() == {}
        stats.record(0.5, "x", "y", 7, "delta")
        assert stats.total_bytes() == 7

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="max_records"):
            TrafficStats(max_records=-1)


# ---------------------------------------------------------------------- #
# exporters
# ---------------------------------------------------------------------- #
def _sample_tracer():
    clock = FakeClock()
    tracer = Tracer(clock=clock, shard=0)
    with tracer.span("fixpoint.round", cat="engine", host="n0", deltas=3):
        clock.now = 0.002
    trace_id = tracer.new_trace()
    root = tracer.begin("query.root", cat="query", host="n1", trace=(trace_id, None))
    clock.now = 0.004
    root.end()
    return tracer


class TestChromeTraceExport:
    def test_export_is_schema_valid(self):
        payload = chrome_trace(_sample_tracer().spans)
        assert validate_chrome_trace(payload) == []

    def test_lane_and_timestamp_mapping(self):
        tracer = _sample_tracer()
        driver = Tracer(shard=-1)
        driver.begin("shard.window", cat="shard").end()
        payload = chrome_trace(list(tracer.spans) + list(driver.spans))
        spans = [event for event in payload["traceEvents"] if event["ph"] == "X"]
        by_name = {event["name"]: event for event in spans}
        # shard -1 (the driver) renders as pid 0; shard 0 as pid 1.
        assert by_name["shard.window"]["pid"] == 0
        assert by_name["fixpoint.round"]["pid"] == 1
        # ts/dur are simulated microseconds.
        assert by_name["fixpoint.round"]["ts"] == 0.0
        assert by_name["fixpoint.round"]["dur"] == 2000.0
        assert by_name["query.root"]["ts"] == 2000.0
        # span links & advisory wall time ride in args.
        args = by_name["query.root"]["args"]
        assert args["trace_id"] == "t0.1"
        assert "wall_us" in args and "span_id" in args
        assert by_name["fixpoint.round"]["args"]["deltas"] == 3
        labels = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert labels == {"driver", "shard 0"}

    def test_write_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "TRACE_sample.json")
        write_chrome_trace(path, _sample_tracer().spans)
        payload = load_trace(path)
        assert validate_chrome_trace(payload) == []
        summary = summarize_trace_events(payload["traceEvents"])
        assert summary["fixpoint.round"]["count"] == 1
        assert summary["query.root"]["cat"] == "query"

    def test_jsonl_export_is_line_parseable(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        write_span_jsonl(path, _sample_tracer().spans)
        with open(path, encoding="utf-8") as handle:
            rows = [json.loads(line) for line in handle]
        assert [row["name"] for row in rows] == ["fixpoint.round", "query.root"]
        assert rows[1]["trace_id"] == "t0.1"

    def test_validator_flags_malformed_payloads(self):
        assert validate_chrome_trace([]) == [
            "trace payload must be an object, got list"
        ]
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        errors = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "B", "name": "bad-phase", "pid": 1, "tid": 1},
                    {"ph": "X", "name": "", "pid": 1, "tid": 1, "ts": 0, "dur": 0},
                    {"ph": "X", "name": "neg", "pid": 1, "tid": 1, "ts": -1, "dur": 0},
                    {"ph": "X", "name": "strpid", "pid": "p", "tid": 1, "ts": 0, "dur": 0},
                    {"ph": "M", "name": "process_name", "pid": 1, "tid": 0, "args": {}},
                    "not-an-object",
                ]
            }
        )
        assert len(errors) == 6
        assert any("unsupported ph" in error for error in errors)
        assert any("missing name" in error for error in errors)
        assert any("non-negative" in error for error in errors)
        assert any("pid must be an integer" in error for error in errors)
        assert any("needs args.name" in error for error in errors)
        assert any("not an object" in error for error in errors)

    def test_phase_breakdown_and_summary(self):
        aggregates = _sample_tracer().phase_aggregates()
        breakdown = phase_breakdown(aggregates)
        assert set(breakdown) == {"fixpoint.round", "query.root"}
        assert breakdown["fixpoint.round"]["count"] == 1
        rendered = phase_summary(aggregates)
        assert "fixpoint.round" in rendered and "query.root" in rendered
        assert phase_summary({}) == "trace: no spans recorded"


# ---------------------------------------------------------------------- #
# zero-overhead structure & wire-size exemption
# ---------------------------------------------------------------------- #
class TestZeroOverheadStructure:
    def test_payload_size_exempts_trace_context(self):
        plain = {"vid": "v1", "spec": "cnt"}
        traced = dict(plain)
        traced[TRACE_CONTEXT_KEY] = ["t0.12345", "s0.67890"]
        assert payload_size(traced) == payload_size(plain)

    def test_engine_hot_path_rebinds_only_when_traced(self):
        net = ExspanNetwork(
            ring_topology(4, seed=0), mincost_program(), config=ExspanConfig(seed=0)
        )
        engine = next(iter(net.nodes.values())).engine
        overridden = ("run", "_process_batch", "_fire_rules")
        # Untraced: no instance-dict shadowing, the class methods run bare.
        assert net.tracer is None and net.simulator.tracer is None
        assert all(name not in engine.__dict__ for name in overridden)
        engine.set_tracer(Tracer())
        assert all(name in engine.__dict__ for name in overridden)
        engine.set_tracer(None)
        assert all(name not in engine.__dict__ for name in overridden)
        assert engine.run.__func__ is type(engine).run


# ---------------------------------------------------------------------- #
# traced runs are bit-identical to untraced runs
# ---------------------------------------------------------------------- #
QUERY_SPEC = derivation_count_query(name="obscnt")


def _run_workload(tracer=None):
    """One deterministic workload: fixpoint + a cross-host provenance query."""
    net = ExspanNetwork(
        cluster_topology(2, 4, seed=3),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE, seed=0),
        tracer=tracer,
    )
    net.register_query_spec(QUERY_SPEC)
    net.seed_links()
    latency = net.run_to_fixpoint()
    fact = Fact("bestPathCost", ("c0_1", "c0_2", 1))
    outcome = net.query_provenance(fact, "obscnt", issuer="c1_1")
    return net, latency, outcome


class TestTracedRunDeterminism:
    def test_traced_and_untraced_runs_are_identical(self):
        untraced_net, untraced_latency, untraced_outcome = _run_workload()
        traced_net, traced_latency, traced_outcome = _run_workload(Tracer())
        assert traced_latency == untraced_latency
        assert repr(traced_outcome.result) == repr(untraced_outcome.result)
        assert traced_net.planner_stats() == untraced_net.planner_stats()
        assert traced_net.query_service_stats() == untraced_net.query_service_stats()
        assert traced_net.stats.kind_totals() == untraced_net.stats.kind_totals()
        assert collect_summary(traced_net) == collect_summary(untraced_net)
        assert collect_digest(traced_net) == collect_digest(untraced_net)
        assert len(traced_net.tracer.spans) > 0

    def test_bounded_traffic_stats_match_unbounded_on_a_real_run(self):
        unbounded_net, _, _ = _run_workload()
        bounded_net = ExspanNetwork(
            cluster_topology(2, 4, seed=3),
            mincost_program(),
            config=ExspanConfig(
                mode=ProvenanceMode.REFERENCE, seed=0, traffic_record_cap=10
            ),
        )
        bounded_net.register_query_spec(QUERY_SPEC)
        bounded_net.seed_links()
        bounded_net.run_to_fixpoint()
        bounded_net.query_provenance(
            Fact("bestPathCost", ("c0_1", "c0_2", 1)), "obscnt", issuer="c1_1"
        )
        assert len(bounded_net.stats) == 10
        assert bounded_net.stats.dropped_records > 0
        assert bounded_net.stats.kind_totals() == unbounded_net.stats.kind_totals()
        assert bounded_net.stats.total_bytes() == unbounded_net.stats.total_bytes()

    def test_cross_host_trace_id_propagation(self):
        net, _, _ = _run_workload(Tracer())
        query_spans = [r for r in net.tracer.spans if r.cat == "query"]
        roots = [r for r in query_spans if r.name == "query.root"]
        assert len(roots) == 1
        trace_id = roots[0].trace_id
        assert trace_id is not None
        in_trace = [r for r in query_spans if r.trace_id == trace_id]
        hosts = {r.host for r in in_trace}
        # The issuer (c1_1) is remote from the fact's cluster, so one trace
        # id must link spans on at least two distinct hosts.
        assert len(hosts) >= 2
        assert "c1_1" in hosts
        # Every non-root span in the trace links to a parent in the trace.
        span_ids = {r.span_id for r in in_trace}
        for record in in_trace:
            if record.span_id != roots[0].span_id:
                assert record.parent_id in span_ids

    def test_trace_renders_valid_chrome_json(self):
        net, _, _ = _run_workload(Tracer())
        payload = chrome_trace(net.tracer.spans)
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"sim.event", "fixpoint.round", "net.fixpoint", "query.root"} <= names

    def test_metrics_snapshot_unifies_counter_families(self):
        net, _, _ = _run_workload()
        snapshot = net.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["engine.tuples_scanned"] == net.planner_stats()[
            "tuples_scanned"
        ]
        assert counters["query.queries_started"] == net.query_service_stats()[
            "queries_started"
        ]
        kind_totals = net.stats.kind_totals()
        for kind, (messages, size) in kind_totals.items():
            assert counters[f"net.messages{{kind={kind}}}"] == messages
            assert counters[f"net.bytes{{kind={kind}}}"] == size
        assert snapshot["gauges"]["sim.now"] == net.simulator.now
        json.dumps(snapshot)


# ---------------------------------------------------------------------- #
# sharded runs: traced == untraced == serial, spans merge across shards
# ---------------------------------------------------------------------- #
def _sharded_workload(tracer=None):
    with ShardedExspanNetwork(
        cluster_topology(2, 4, seed=3),
        mincost_program(),
        shards=2,
        seed=0,
        query_specs=(QUERY_SPEC,),
        tracer=tracer,
    ) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        outcome = sharded.query_provenance(
            Fact("bestPathCost", ("c0_1", "c0_2", 1)), "obscnt", issuer="c1_1"
        )
        summary, digest = sharded.summary(), sharded.digest()
        assignment = dict(sharded.assignment)
    return summary, digest, outcome, assignment


class TestShardedTraceDeterminism:
    def test_traced_sharded_matches_untraced_and_serial(self):
        tracer = Tracer(shard=-1)
        traced = _sharded_workload(tracer)
        untraced = _sharded_workload()
        assert traced[:2] == untraced[:2]
        assert traced[2]["vid"] == untraced[2]["vid"]

        serial_net, _, _ = _run_workload()
        assert traced[0] == collect_summary(serial_net)
        assert traced[1] == collect_digest(serial_net)
        assert len(tracer.spans) > 0

    def test_spans_merge_across_shards_under_one_trace(self):
        tracer = Tracer(shard=-1)
        _, _, _, assignment = _sharded_workload(tracer)
        shards_seen = {record.shard for record in tracer.spans}
        # Driver barrier spans (-1) plus both worker shards.
        assert {-1, 0, 1} <= shards_seen
        assert {r.name for r in tracer.spans if r.shard == -1} >= {
            "shard.seed",
            "shard.window",
        }
        # One distributed query renders as one causally-linked tree across
        # hosts living on different shard processes.
        roots = [r for r in tracer.spans if r.name == "query.root"]
        assert roots
        trace_id = roots[0].trace_id
        hosts = {
            r.host
            for r in tracer.spans
            if r.cat == "query" and r.trace_id == trace_id and r.host is not None
        }
        assert len(hosts) >= 2
        assert len({assignment[host] for host in hosts}) == 2
        payload = chrome_trace(tracer.spans)
        assert validate_chrome_trace(payload) == []
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert pids == {0, 1, 2}


# ---------------------------------------------------------------------- #
# orchestrator capture path
# ---------------------------------------------------------------------- #
class TestOrchestratorTracing:
    @pytest.fixture
    def tiny_scenario(self):
        from repro.experiments import Scenario, TrialSpec, register, unregister

        name = "tmp_obs_fixpoint"

        def expand(params):
            return [
                TrialSpec(
                    scenario=name,
                    trial_id=f"size={size}",
                    fn="testbed_fixpoint",
                    kwargs={"size": size, "mode": "ref", "seed": params["seed"]},
                )
                for size in params["sizes"]
            ]

        scenario = Scenario(
            name=name,
            title="tiny traced fixpoint",
            x_label="Number of Nodes",
            y_label="Fixpoint Latency (seconds)",
            expand=expand,
            quick={"sizes": (4, 6), "seed": 0},
        )
        register(scenario)
        yield scenario
        unregister(name)

    def test_traced_artifacts_are_byte_identical_and_traces_valid(
        self, tiny_scenario, tmp_path
    ):
        from repro.experiments.orchestrator import (
            artifact_path,
            canonical_artifact_bytes,
            load_artifact,
            run,
        )

        trace_dir = str(tmp_path / "traces")
        plain = run([tiny_scenario.name], results_dir=str(tmp_path / "plain"))
        traced = run(
            [tiny_scenario.name],
            results_dir=str(tmp_path / "traced"),
            trace_dir=trace_dir,
        )
        assert plain.executed == traced.executed == 2

        # The hard constraint: byte-identical canonical artifacts.
        plain_bytes = canonical_artifact_bytes(
            artifact_path(str(tmp_path / "plain"), tiny_scenario.name)
        )
        traced_bytes = canonical_artifact_bytes(
            artifact_path(str(tmp_path / "traced"), tiny_scenario.name)
        )
        assert plain_bytes is not None
        assert plain_bytes == traced_bytes

        # Advisory phase breakdowns ride on the raw (non-canonical) trials.
        artifact = load_artifact(
            artifact_path(str(tmp_path / "traced"), tiny_scenario.name)
        )
        for trial in artifact["trials"]:
            assert trial["phases"]["fixpoint.round"]["count"] > 0
        assert b"phases" not in traced_bytes

        # One valid Chrome trace per executed trial.
        trace_files = sorted(os.listdir(trace_dir))
        assert trace_files == [
            "TRACE_tmp_obs_fixpoint_size-4.json",
            "TRACE_tmp_obs_fixpoint_size-6.json",
        ]
        for filename in trace_files:
            payload = load_trace(os.path.join(trace_dir, filename))
            assert validate_chrome_trace(payload) == []
            assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_parallel_traced_run_matches_serial_traced_run(
        self, tiny_scenario, tmp_path
    ):
        from repro.experiments.orchestrator import (
            artifact_path,
            canonical_artifact_bytes,
            run,
        )

        serial = run(
            [tiny_scenario.name],
            results_dir=str(tmp_path / "s"),
            trace_dir=str(tmp_path / "ts"),
        )
        parallel = run(
            [tiny_scenario.name],
            workers=2,
            results_dir=str(tmp_path / "p"),
            trace_dir=str(tmp_path / "tp"),
        )
        assert serial.executed == parallel.executed
        assert canonical_artifact_bytes(
            artifact_path(str(tmp_path / "s"), tiny_scenario.name)
        ) == canonical_artifact_bytes(
            artifact_path(str(tmp_path / "p"), tiny_scenario.name)
        )
        assert sorted(os.listdir(tmp_path / "ts")) == sorted(
            os.listdir(tmp_path / "tp")
        )

    def test_trace_cli_validates_and_summarizes(self, tiny_scenario, tmp_path, capsys):
        from repro.experiments.__main__ import main as cli_main
        from repro.experiments.orchestrator import run

        trace_dir = tmp_path / "traces"
        run(
            [tiny_scenario.name],
            results_dir=str(tmp_path / "results"),
            trace_dir=str(trace_dir),
        )
        files = sorted(str(path) for path in trace_dir.iterdir())
        assert cli_main(["trace", *files, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace" in out
        assert "phase summary" in out

        broken = tmp_path / "broken.json"
        broken.write_text('{"traceEvents": [{"ph": "Q"}]}')
        assert cli_main(["trace", str(broken)]) == 1
        assert "INVALID" in capsys.readouterr().out
