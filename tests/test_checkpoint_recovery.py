"""Crash-recovery gate: checkpoint, SIGKILL, restore in a fresh process.

The durability story has to survive a real process death, not just an
in-process round-trip: a run is interrupted *after* ``checkpoint(path)``
by ``SIGKILL`` (no atexit, no flush-on-exit can save it), then a fresh
process — with a different ``PYTHONHASHSEED`` — restores from the file,
continues the scripted evolution to fixpoint, and must produce digests
byte-identical to one uninterrupted process that ran the whole script.

All three protocols are covered: MINCOST, PATHVECTOR, and
PATHVECTOR+PACKETFORWARD (whose continuation injects data-plane packet
events through the restored control plane).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The subprocess driver.  argv: PROTOCOL PHASE CKPT_PATH
#:   PHASE ``crash``   — phase A, checkpoint, SIGKILL itself
#:   PHASE ``restore`` — restore from the checkpoint, run phase B, print digests
#:   PHASE ``full``    — phases A+B in one uninterrupted process, print digests
DRIVER = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.core.api import ExspanNetwork
    from repro.core.config import ExspanConfig
    from repro.datalog.ast import Fact
    from repro.net.sharding import node_state_digest
    from repro.net.topology import ring_topology
    from repro.protocols.mincost import mincost_program
    from repro.protocols.packetforward import packet_event, packetforward_program
    from repro.protocols.pathvector import pathvector_program

    protocol, phase, ckpt_path = sys.argv[1], sys.argv[2], sys.argv[3]

    def program():
        if protocol == "mincost":
            return mincost_program()
        if protocol == "pathvector":
            return pathvector_program()
        if protocol == "pv+fwd":
            return pathvector_program().extended(packetforward_program(), "pv+fwd")
        raise SystemExit(f"unknown protocol {protocol!r}")

    topology = ring_topology(6, seed=4)

    # Churn lives entirely in phase B: `remove_link`/`add_link` mutate the
    # topology object, and `restore` rebuilds from a freshly constructed
    # one — a checkpoint taken after topology churn would need the caller
    # to replay that churn onto the topology handed to `restore`.
    def phase_a(network):
        network.seed_links()
        network.run_to_fixpoint()

    def phase_b(network):
        network.remove_link("n0", "n1")
        network.run_to_fixpoint()
        network.add_link("n2", "n5", cost=2)
        network.run_to_fixpoint()
        if protocol == "pv+fwd":
            for source, destination in (("n0", "n3"), ("n4", "n1")):
                network.insert_fact(packet_event(source, source, destination, "pkt"))
            network.run_to_fixpoint()

    def emit(network):
        digests = {
            address: node_state_digest(node.engine)
            for address, node in network.nodes.items()
        }
        payload = {
            "digests": digests,
            "now": network.now,
            "planner": network.planner_stats(),
        }
        json.dump(payload, sys.stdout, sort_keys=True)
        sys.stdout.write("\\n")

    if phase == "crash":
        network = ExspanNetwork(topology, program(), config=ExspanConfig(seed=0))
        phase_a(network)
        network.checkpoint(ckpt_path)
        os.kill(os.getpid(), signal.SIGKILL)
    elif phase == "restore":
        network = ExspanNetwork.restore(ckpt_path, topology, program())
        phase_b(network)
        emit(network)
    elif phase == "full":
        network = ExspanNetwork(topology, program(), config=ExspanConfig(seed=0))
        phase_a(network)
        phase_b(network)
        emit(network)
    else:
        raise SystemExit(f"unknown phase {phase!r}")
    """
)


def _run_driver(driver_path, protocol, phase, ckpt_path, hashseed):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.join(REPO, "src")
    environment["PYTHONHASHSEED"] = str(hashseed)
    return subprocess.run(
        [sys.executable, driver_path, protocol, phase, ckpt_path],
        capture_output=True,
        text=True,
        env=environment,
        timeout=120,
    )


@pytest.mark.parametrize(
    "protocol,hashseeds",
    [
        ("mincost", (1, 2)),
        ("pathvector", (3, 4)),
        ("pv+fwd", (5, 6)),
    ],
)
def test_crash_recovery_matches_uninterrupted_run(tmp_path, protocol, hashseeds):
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER, encoding="utf-8")
    ckpt = str(tmp_path / f"{protocol}.ckpt")
    crash_seed, continue_seed = hashseeds

    crashed = _run_driver(str(driver), protocol, "crash", ckpt, crash_seed)
    assert crashed.returncode == -signal.SIGKILL, crashed.stderr
    assert os.path.exists(ckpt), "checkpoint must survive the SIGKILL"

    # Fresh process, different hash seed: restore and finish the script.
    restored = _run_driver(str(driver), protocol, "restore", ckpt, continue_seed)
    assert restored.returncode == 0, restored.stderr

    # A third process runs the whole script uninterrupted, under yet
    # another hash randomization.
    uninterrupted = _run_driver(str(driver), protocol, "full", ckpt, crash_seed + 100)
    assert uninterrupted.returncode == 0, uninterrupted.stderr

    assert json.loads(restored.stdout) == json.loads(uninterrupted.stdout)
