"""Tests for hosts, the network layer, traffic statistics and churn."""

from __future__ import annotations

import pytest

from repro.net import (
    ChurnGenerator,
    LinkSpec,
    Network,
    Simulator,
    Topology,
    TrafficStats,
    cdf_points,
    line_topology,
    ring_topology,
    transit_stub_topology,
)
from repro.net.errors import NetworkError, UnknownNodeError
from repro.net.stats import LatencyStats


def two_node_network() -> Network:
    topology = Topology()
    topology.add_link("a", "b", LinkSpec(latency=0.010))
    return Network(topology)


class TestNetworkDelivery:
    def test_message_delivered_after_link_latency(self):
        network = two_node_network()
        received = []
        network.host("b").register_handler("ping", lambda message: received.append(message))
        network.send("a", "b", "ping", {"x": 1})
        assert received == []
        network.run_to_fixpoint()
        assert len(received) == 1
        assert received[0].payload == {"x": 1}
        assert network.simulator.now == pytest.approx(0.010)

    def test_multi_hop_latency_used_for_non_adjacent_nodes(self):
        topology = line_topology(3, latency=0.010)
        network = Network(topology)
        received_at = []
        network.host("n2").register_handler(
            "ping", lambda message: received_at.append(network.simulator.now)
        )
        network.send("n0", "n2", "ping", "payload")
        network.run_to_fixpoint()
        assert received_at[0] == pytest.approx(0.020)

    def test_send_to_unknown_node_raises(self):
        network = two_node_network()
        with pytest.raises(UnknownNodeError):
            network.send("a", "zzz", "ping", None)

    def test_missing_handler_raises(self):
        network = two_node_network()
        network.send("a", "b", "unhandled", None)
        with pytest.raises(NetworkError):
            network.run_to_fixpoint()

    def test_bytes_recorded_per_message(self):
        network = two_node_network()
        network.host("b").register_handler("ping", lambda message: None)
        message = network.send("a", "b", "ping", "x" * 100)
        assert message.size > 100
        assert network.stats.total_bytes() == message.size
        assert network.stats.total_messages() == 1

    def test_self_message_has_zero_latency(self):
        network = two_node_network()
        received = []
        network.host("a").register_handler("loop", lambda message: received.append(1))
        network.send("a", "a", "loop", None)
        network.run_to_fixpoint()
        assert received == [1]
        assert network.simulator.now == 0.0

    def test_host_down_drops_messages(self):
        network = two_node_network()
        received = []
        network.host("b").register_handler("ping", lambda message: received.append(1))
        network.host("b").up = False
        network.send("a", "b", "ping", None)
        network.run_to_fixpoint()
        assert received == []


class TestTrafficStats:
    def test_totals_and_filters(self):
        stats = TrafficStats()
        stats.record(0.0, "a", "b", 100, "delta")
        stats.record(1.0, "a", "c", 50, "prov")
        stats.record(2.0, "b", "c", 25, "delta")
        assert stats.total_bytes() == 175
        assert stats.total_bytes(["delta"]) == 125
        assert stats.total_messages(["prov"]) == 1
        assert stats.bytes_by_sender(["delta"]) == {"a": 100, "b": 25}
        assert stats.average_bytes_per_node(5) == pytest.approx(35.0)
        assert stats.last_activity_time() == 2.0

    def test_reset(self):
        stats = TrafficStats()
        stats.record(0.0, "a", "b", 10, "delta")
        stats.reset()
        assert stats.total_bytes() == 0
        assert len(stats) == 0

    def test_bandwidth_timeseries_buckets(self):
        stats = TrafficStats()
        stats.record(0.1, "a", "b", 100, "delta")
        stats.record(0.2, "a", "b", 100, "delta")
        stats.record(1.5, "a", "b", 300, "delta")
        series = stats.bandwidth_timeseries(bucket=1.0, node_count=2, start=0.0, end=2.0)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(200 / (1.0 * 2))
        assert series[1][1] == pytest.approx(300 / (1.0 * 2))

    def test_average_per_node_zero_nodes(self):
        assert TrafficStats().average_bytes_per_node(0) == 0.0


class TestLatencyStats:
    def test_percentiles_and_mean(self):
        stats = LatencyStats()
        stats.extend([0.1, 0.2, 0.3, 0.4, 0.5])
        assert stats.mean() == pytest.approx(0.3)
        assert stats.percentile(0.0) == pytest.approx(0.1)
        assert stats.percentile(0.8) == pytest.approx(0.5)
        assert stats.count() == 5

    def test_empty_stats(self):
        # mean/percentile on an empty sample set used to silently return
        # 0.0 — indistinguishable from a real zero-latency measurement.
        # They now raise; cdf() stays [] (an empty curve is well-defined).
        stats = LatencyStats()
        with pytest.raises(ValueError, match="empty sample set"):
            stats.mean()
        with pytest.raises(ValueError, match="empty sample set"):
            stats.percentile(0.5)
        assert stats.cdf() == []

    def test_percentile_fraction_out_of_range(self):
        stats = LatencyStats()
        stats.extend([0.1, 0.2])
        with pytest.raises(ValueError, match="fraction"):
            stats.percentile(1.5)
        with pytest.raises(ValueError, match="fraction"):
            stats.percentile(-0.1)

    def test_cdf_points_monotone(self):
        points = cdf_points([0.1, 0.4, 0.4, 0.9], points=10)
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cdf_points_single_value(self):
        assert cdf_points([2.0, 2.0]) == [(2.0, 1.0)]


class TestChurn:
    def _network_callbacks(self):
        added, removed = [], []
        return added, removed

    def test_churn_applies_requested_rounds(self):
        topology = transit_stub_topology(domains=1, nodes_per_stub=4, seed=0)
        simulator = Simulator()
        added, removed = [], []
        churn = ChurnGenerator(
            topology,
            simulator,
            add_link=lambda a, b, cost: added.append((a, b)),
            remove_link=lambda a, b: removed.append((a, b)),
            links_per_round=5,
            interval=0.5,
            seed=1,
        )
        churn.start(rounds=3)
        simulator.run_until_idle()
        assert len(churn.events) == 15
        assert len(added) == len(churn.additions())
        assert len(removed) == len(churn.deletions())
        assert simulator.now == pytest.approx(1.5)

    def test_churn_only_touches_stub_nodes(self):
        topology = transit_stub_topology(domains=1, nodes_per_stub=4, seed=0)
        simulator = Simulator()
        churn = ChurnGenerator(
            topology,
            simulator,
            add_link=lambda a, b, cost: None,
            remove_link=lambda a, b: None,
            links_per_round=10,
            seed=3,
        )
        churn.start(rounds=2)
        simulator.run_until_idle()
        for event in churn.additions():
            assert topology.node_kind(event.endpoint_a) == "stub"
            assert topology.node_kind(event.endpoint_b) == "stub"

    def test_churn_stop(self):
        topology = ring_topology(10, seed=0)
        simulator = Simulator()
        events = []
        churn = ChurnGenerator(
            topology,
            simulator,
            add_link=lambda a, b, cost: events.append("add"),
            remove_link=lambda a, b: events.append("del"),
            links_per_round=2,
            seed=0,
        )
        churn.start(rounds=5)
        churn.stop()
        simulator.run_until_idle()
        assert events == []
