"""Tests for the provenance-maintenance rewrite (Algorithm 1)."""

from __future__ import annotations

import pytest

from paper_example import FIGURE3_BEST_COSTS, FIGURE3_NODES, insert_symmetric_links
from repro.core import (
    PROV_TABLE,
    RULE_EXEC_TABLE,
    ProvenanceStore,
    RewriteError,
    build_global_graph,
    rewrite_program,
    rule_rid,
    tuple_vid,
)
from repro.core.rewrite import ProvenanceRewriter
from repro.datalog import Fact, StandaloneNetwork, parse_program
from repro.protocols import mincost_program, packetforward_program, pathvector_program


class TestRewriteStructure:
    def test_non_aggregate_rule_produces_five_rules(self):
        program = parse_program("r1 reach(@D,S) :- link(@S,D,C).")
        rewritten = rewrite_program(program)
        labels = [rule.label for rule in rewritten.rules]
        for suffix in ("_ptmp", "_pexec", "_pmsg", "_phead", "_pprov"):
            assert f"r1{suffix}" in labels
        # plus one EDB prov rule for link
        assert "edb_link_pprov" in labels
        assert len(rewritten.rules) == 6

    def test_aggregate_rule_keeps_original_and_adds_three(self):
        rewritten = rewrite_program(mincost_program())
        labels = [rule.label for rule in rewritten.rules]
        assert "sp3" in labels           # original aggregate rule kept
        assert "sp3_ptmp" in labels
        assert "sp3_pexec" in labels
        assert "sp3_pprov" in labels
        assert "sp3_pmsg" not in labels  # aggregates are local: no message rule

    def test_prov_and_rule_exec_tables_declared(self):
        rewritten = rewrite_program(mincost_program())
        names = {decl.name for decl in rewritten.declarations}
        assert PROV_TABLE in names
        assert RULE_EXEC_TABLE in names

    def test_rewritten_program_validates(self):
        rewrite_program(mincost_program()).validate()
        rewrite_program(pathvector_program()).validate()
        rewrite_program(packetforward_program()).validate()

    def test_message_event_carries_only_rid_and_rloc_extra(self):
        program = parse_program("r1 reach(@D,S) :- link(@S,D,C).")
        rewritten = rewrite_program(program)
        message_rule = rewritten.rule_by_label("r1_pmsg")
        # original head has 2 attributes; message event has 2 + RID + RLoc
        assert message_rule.head.arity == 4

    def test_unsupported_aggregate_rejected(self):
        program = parse_program("c1 total(@S,sum<C>) :- link(@S,D,C).")
        with pytest.raises(RewriteError):
            rewrite_program(program)

    def test_rule_without_body_atoms_rejected(self):
        program = parse_program("r1 one(@X,1) :- other(@X).")
        # remove the body atom to simulate a degenerate rule
        from repro.datalog.ast import Program, Rule

        degenerate = Program(rules=[Rule("r1", program.rules[0].head, [])])
        with pytest.raises(RewriteError):
            rewrite_program(degenerate)

    def test_constant_location_rule_rejected(self):
        program = parse_program('r1 out(@D,S) :- link(@"a",S,D).')
        with pytest.raises(RewriteError):
            rewrite_program(program)

    def test_fresh_variables_avoid_collisions(self):
        # The original rule already uses ProvRLoc as a variable name.
        program = parse_program(
            "r1 out(@S,ProvRLoc) :- link(@S,ProvRLoc,C)."
        )
        rewritten = rewrite_program(program)
        rewritten.validate()

    def test_facts_and_declarations_carried_over(self):
        program = mincost_program()
        program.add_fact(Fact("link", ("a", "b", 1)))
        rewritten = rewrite_program(program)
        assert len(rewritten.facts) == 1
        assert {decl.name for decl in rewritten.declarations} >= {"link", "pathCost"}


class TestRewriteExecution:
    """The rewritten program must derive the same tuples plus provenance."""

    @pytest.fixture
    def rewritten_network(self):
        network = StandaloneNetwork(FIGURE3_NODES, rewrite_program(mincost_program()))
        insert_symmetric_links(network)
        network.run()
        return network

    def test_same_best_path_costs_as_original(self, rewritten_network):
        rows = rewritten_network.all_rows("bestPathCost")
        for (source, destination), cost in FIGURE3_BEST_COSTS.items():
            assert (source, destination, cost) in rows

    def test_prov_entries_created_for_base_tuples(self, rewritten_network):
        store = ProvenanceStore(rewritten_network.engine("a"))
        vid = tuple_vid("link", ("a", "b", 3))
        entries = store.prov_entries(vid)
        assert len(entries) == 1
        assert entries[0].is_base

    def test_prov_entries_for_derived_tuple_match_paper_example(self, rewritten_network):
        """pathCost(@a,c,5) has two derivations: sp1@a and sp2@b (Table 1)."""
        store = ProvenanceStore(rewritten_network.engine("a"))
        vid = tuple_vid("pathCost", ("a", "c", 5))
        entries = [entry for entry in store.prov_entries(vid) if not entry.is_base]
        assert len(entries) == 2
        locations = sorted(entry.rule_location for entry in entries)
        assert locations == ["a", "b"]

    def test_rule_exec_rid_matches_paper_hash_formula(self, rewritten_network):
        """RID2 = SHA1("sp1" + a + VID3) for pathCost(@a,c,5) via sp1@a (Figure 5)."""
        store_a = ProvenanceStore(rewritten_network.engine("a"))
        vid_link = tuple_vid("link", ("a", "c", 5))
        expected_rid = rule_rid("sp1", "a", [vid_link])
        entry = store_a.rule_exec(expected_rid)
        assert entry is not None
        assert entry.rule_label == "sp1"
        assert list(entry.input_vids) == [vid_link]

    def test_sp2_rule_exec_references_both_inputs(self, rewritten_network):
        """RID3 = SHA1("sp2" + b + VID_link(b,a,3) + VID_bestPathCost(b,c,2))."""
        store_b = ProvenanceStore(rewritten_network.engine("b"))
        vid_link = tuple_vid("link", ("b", "a", 3))
        vid_best = tuple_vid("bestPathCost", ("b", "c", 2))
        expected_rid = rule_rid("sp2", "b", [vid_link, vid_best])
        entry = store_b.rule_exec(expected_rid)
        assert entry is not None
        assert entry.rule_label == "sp2"
        assert set(entry.input_vids) == {vid_link, vid_best}

    def test_aggregate_provenance_attributed_to_winning_tuple(self, rewritten_network):
        """bestPathCost(@a,c,5) derives from the winning pathCost(@a,c,5) via sp3@a."""
        store_a = ProvenanceStore(rewritten_network.engine("a"))
        vid_best = tuple_vid("bestPathCost", ("a", "c", 5))
        entries = [entry for entry in store_a.prov_entries(vid_best) if not entry.is_base]
        assert len(entries) >= 1
        rule_entry = store_a.rule_exec(entries[0].rid)
        assert rule_entry.rule_label == "sp3"
        assert tuple_vid("pathCost", ("a", "c", 5)) in rule_entry.input_vids

    def test_global_graph_matches_figure5(self, rewritten_network):
        stores = [
            ProvenanceStore(rewritten_network.engine(node)) for node in FIGURE3_NODES
        ]
        graph = build_global_graph(stores)
        assert graph.is_acyclic()
        vid = tuple_vid("bestPathCost", ("a", "c", 5))
        bases = graph.reachable_base_tuples(vid)
        base_tuples = {
            (graph.tuples[b].fact.name, graph.tuples[b].fact.values) for b in bases
        }
        assert base_tuples == {
            ("link", ("a", "c", 5)),
            ("link", ("b", "a", 3)),
            ("link", ("b", "c", 2)),
        }
        assert graph.nodes_involved(vid) == frozenset({"a", "b"})

    def test_deletion_cascades_to_prov_tables(self, rewritten_network):
        network = rewritten_network
        store_a = ProvenanceStore(network.engine("a"))
        vid_pc = tuple_vid("pathCost", ("a", "c", 5))
        assert len([e for e in store_a.prov_entries(vid_pc) if not e.is_base]) == 2
        network.delete(Fact("link", ("a", "c", 5)))
        network.delete(Fact("link", ("c", "a", 5)))
        network.run()
        remaining = [e for e in store_a.prov_entries(vid_pc) if not e.is_base]
        assert len(remaining) == 1  # only the derivation through b survives
        # the link's own base prov entry is gone as well
        assert store_a.prov_entries(tuple_vid("link", ("a", "c", 5))) == []

    def test_prov_row_counts_are_positive_everywhere(self, rewritten_network):
        for node in FIGURE3_NODES:
            store = ProvenanceStore(rewritten_network.engine(node))
            assert store.prov_row_count() > 0
            assert store.rule_exec_row_count() > 0


class TestPathvectorRewriteExecution:
    def test_pathvector_rewrite_preserves_routes(self):
        network = StandaloneNetwork(FIGURE3_NODES, rewrite_program(pathvector_program()))
        insert_symmetric_links(network)
        network.run()
        rows = [row for row in network.all_rows("bestPath") if row[0] == "a" and row[1] == "c"]
        assert len(rows) == 1
        assert list(rows[0][3]) == ["a", "b", "c"]

    def test_packetforward_rewrite_executes(self):
        program = pathvector_program().extended(packetforward_program(), "combined")
        network = StandaloneNetwork(FIGURE3_NODES, rewrite_program(program))
        insert_symmetric_links(network)
        network.run()
        network.insert(Fact("ePacket", ("a", "a", "d", "payload")))
        network.run()
        received = network.all_rows("recvPacket")
        assert ("d", "a", "d", "payload") in received
