"""The deterministic fault-injection subsystem (serial engine).

Covers the plan grammar and its round-trips, the empty-plan byte-identity
contract, the convergence oracle (every quiescing fault plan yields final
protocol tables digest-identical to the fault-free run), graceful
degradation of deadline-bounded queries into explicit partial results,
and the simulator's tombstone bookkeeping under mass cancellation.
Sharded/worker fault paths live in test_fault_recovery.py.
"""

from __future__ import annotations

import pytest

from paper_example import figure3_topology
from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode
from repro.core.errors import ProvenanceError
from repro.core.requests import QueryRequest, SpecDescriptor
from repro.datalog import Fact
from repro.faults import (
    CrashFault,
    FaultPlan,
    LinkFault,
    convergence_digest,
    parse_fault_spec,
)
from repro.net.sharding import collect_digest, collect_summary
from repro.net.simulator import Simulator
from repro.protocols import mincost_program


def build_network(faults=None) -> ExspanNetwork:
    network = ExspanNetwork(
        figure3_topology(),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    if faults is not None:
        network.install_faults(faults)
    return network


def run_fixpoint(faults=None) -> ExspanNetwork:
    network = build_network(faults)
    network.seed_links()
    network.run_to_fixpoint()
    return network


# ---------------------------------------------------------------------- #
# plan grammar
# ---------------------------------------------------------------------- #
class TestPlanParsing:
    def test_link_fault_clause(self):
        plan = parse_fault_spec("seed=9; drop:a->b:p=0.5,n=3,from=0.1,until=2.0")
        assert plan.seed == 9
        fault = plan.link_faults[0]
        assert fault == LinkFault(
            kind="drop", src="a", dst="b", prob=0.5, max_events=3, start=0.1, end=2.0
        )
        assert fault.matches("a", "b", 1.0)
        assert not fault.matches("b", "a", 1.0)
        assert not fault.matches("a", "b", 3.0)

    def test_wildcard_edges(self):
        plan = parse_fault_spec("dup:*->*:p=0.25")
        fault = plan.link_faults[0]
        assert fault.src is None and fault.dst is None
        assert fault.matches("x", "y", 0.0)

    def test_crash_flap_straggler_kill_clauses(self):
        plan = parse_fault_spec(
            "crash:b@0.5:restart=1.0; flap:a-b@0.2:up=0.3,cost=7; "
            "straggler:c:d=0.01; killworker:1@2"
        )
        assert plan.crashes == (CrashFault(node="b", at=0.5, restart_after=1.0),)
        flap = plan.flaps[0]
        assert (flap.a, flap.b, flap.down_at, flap.up_after, flap.cost) == (
            "a", "b", 0.2, 0.3, 7
        )
        straggler = plan.stragglers[0]
        assert (straggler.node, straggler.delay) == ("c", 0.01)
        kill = plan.worker_kills[0]
        assert (kill.shard, kill.after_windows) == (1, 2)

    def test_describe_reparses_to_the_same_plan(self):
        text = (
            "seed=4; rto=0.1; attempts=6; drop:a->*:p=0.3,n=5; "
            "delay:*->b:p=0.2,d=0.004; crash:c@0.5:restart=1.0; "
            "flap:a-b@0.2:up=0.3; straggler:d:d=0.002"
        )
        plan = parse_fault_spec(text)
        assert parse_fault_spec(plan.describe()) == plan

    def test_dict_round_trip(self):
        plan = parse_fault_spec(
            "seed=2; dup:*->*:p=0.1; crash:a@1.0; killworker:0@1"
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_plan(self):
        assert FaultPlan.empty().is_empty()
        assert parse_fault_spec("").is_empty()
        assert parse_fault_spec("seed=7").is_empty()
        assert not parse_fault_spec("drop:*->*:p=0.1").is_empty()

    @pytest.mark.parametrize(
        "text",
        [
            "explode:a->b:p=1",
            "drop:a->b:p=2.0",
            "drop:nonsense",
            "flap:a-b@0.2",
            "crash:@1",
            "drop:a->b:p=0.1,zz=3",
        ],
    )
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_fault_spec(text)


# ---------------------------------------------------------------------- #
# installation and the empty-plan identity contract
# ---------------------------------------------------------------------- #
class TestInstallation:
    def test_empty_plan_is_byte_identical_to_no_plan(self):
        plain = run_fixpoint()
        empty = build_network()
        assert empty.install_faults(FaultPlan.empty()) is None
        assert empty.fault_injector is None
        empty.seed_links()
        empty.run_to_fixpoint()
        # Full digests (tables, annotations, counters) — identity by
        # construction, not convergence-up-to-retransmits.
        assert collect_digest(empty) == collect_digest(plain)
        assert collect_summary(empty) == collect_summary(plain)

    def test_double_install_rejected(self):
        network = build_network("drop:*->*:p=0.1")
        with pytest.raises(ProvenanceError):
            network.install_faults("drop:*->*:p=0.2")

    def test_install_accepts_spec_strings_and_plans(self):
        by_string = build_network("drop:a->b:p=0.5")
        by_plan = build_network(parse_fault_spec("drop:a->b:p=0.5"))
        assert by_string.fault_injector.plan == by_plan.fault_injector.plan

    def test_metrics_snapshot_carries_fault_counters(self):
        network = run_fixpoint("seed=3; attempts=8; drop:*->*:p=0.3,n=10")
        counters = network.metrics_snapshot()["counters"]
        assert counters["fault.drops"] > 0
        assert counters["fault.retransmits"] > 0


# ---------------------------------------------------------------------- #
# the convergence oracle, one fault class at a time
# ---------------------------------------------------------------------- #
class TestConvergence:
    @pytest.fixture(scope="class")
    def reference(self):
        return convergence_digest(run_fixpoint())

    def test_drops_converge_and_retransmit(self, reference):
        network = run_fixpoint("seed=3; attempts=8; drop:*->*:p=0.3,n=12")
        stats = network.fault_injector.stats()
        assert stats["drops"] > 0
        assert stats["retransmits"] >= stats["drops"]
        assert convergence_digest(network) == reference

    def test_duplicates_converge_and_are_suppressed(self, reference):
        network = run_fixpoint("seed=5; dup:*->*:p=0.4,n=10")
        stats = network.fault_injector.stats()
        assert stats["duplicates"] > 0
        # `duplicates` counts every cloned frame (acks included);
        # `dup_suppressed` only the app-level deliveries the receiver's
        # sequence tracking had to reject, so the two are not comparable.
        assert stats["dup_suppressed"] > 0
        assert convergence_digest(network) == reference

    def test_delays_and_reorders_converge(self, reference):
        network = run_fixpoint("seed=8; delay:*->*:p=0.4,d=0.01")
        assert network.fault_injector.stats()["delays"] > 0
        assert convergence_digest(network) == reference

    def test_stragglers_converge(self, reference):
        network = run_fixpoint("straggler:b:d=0.005")
        assert convergence_digest(network) == reference

    def test_crash_restart_converges(self, reference):
        network = run_fixpoint("attempts=8; crash:c@0.0015:restart=0.02")
        stats = network.fault_injector.stats()
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1
        assert stats["replayed_entries"] > 0
        assert convergence_digest(network) == reference

    def test_flap_converges_and_restores_cost(self, reference):
        network = run_fixpoint("attempts=8; flap:a-b@0.001:up=0.01")
        stats = network.fault_injector.stats()
        assert stats["flaps_down"] == 1
        assert stats["flaps_up"] == 1
        assert network.topology.link("a", "b").cost == 3
        assert convergence_digest(network) == reference

    def test_everything_at_once_converges(self, reference):
        network = run_fixpoint(
            "seed=11; attempts=10; drop:*->*:p=0.2,n=10; dup:*->*:p=0.2,n=10; "
            "delay:*->*:p=0.2,d=0.003; crash:d@0.002:restart=0.03; "
            "straggler:b:d=0.001"
        )
        assert convergence_digest(network) == reference

    def test_same_plan_is_bit_reproducible(self):
        spec = "seed=3; attempts=8; drop:*->*:p=0.3,n=12; delay:*->*:p=0.2,d=0.002"
        first = run_fixpoint(spec)
        second = run_fixpoint(spec)
        assert first.fault_injector.stats() == second.fault_injector.stats()
        assert collect_digest(first) == collect_digest(second)


# ---------------------------------------------------------------------- #
# graceful degradation: deadlines, partial results, explicit frontier
# ---------------------------------------------------------------------- #
class TestPartialResults:
    def _query(self, network, deadline=None, fact=("a", "d", 8)):
        return network.execute(
            QueryRequest(
                fact=Fact("bestPathCost", fact),
                spec=SpecDescriptor(kind="derivations"),
                issuer="a",
                deadline=deadline,
            )
        )

    def test_unreachable_target_degrades_to_partial(self):
        network = run_fixpoint("attempts=3; crash:d@0.0005")
        # The queried fact is homed at the crashed node, so the root
        # provQuery can never be answered and the deadline must convert
        # the hang into an explicit partial result.
        result = self._query(network, deadline=2.0, fact=("d", "a", 8))
        assert result.partial
        assert result.unresolved
        # The frontier names the node the resolution was waiting on.
        assert any("d" in entry[0] for entry in result.unresolved)
        stats = network.node("a").query_service.query_stats()
        assert stats["deadline_expirations"] == 1

    def test_partial_flag_round_trips_the_wire(self):
        network = run_fixpoint("attempts=3; crash:d@0.0005")
        payload = self._query(network, deadline=2.0, fact=("d", "a", 8)).to_dict()
        assert payload["partial"] is True
        assert payload["unresolved"]

    def test_complete_results_omit_partial_keys(self):
        network = run_fixpoint()
        result = self._query(network, deadline=50.0)
        assert not result.partial
        assert result.unresolved == ()
        payload = result.to_dict()
        assert "partial" not in payload
        assert "unresolved" not in payload

    def test_deadline_met_is_not_partial(self):
        network = run_fixpoint("seed=3; attempts=8; drop:*->*:p=0.2,n=6")
        result = self._query(network, deadline=50.0)
        assert not result.partial


# ---------------------------------------------------------------------- #
# simulator tombstones under mass cancellation (the injector's timers)
# ---------------------------------------------------------------------- #
class TestTombstoneCompaction:
    def test_queue_length_is_live_plus_cancelled(self):
        simulator = Simulator()
        events = [simulator.schedule(1.0 + i * 1e-6, lambda: None) for i in range(500)]
        assert simulator.queue_length == simulator.pending_events == 500
        for index, event in enumerate(events):
            if index % 5 != 0:
                event.cancel()
            assert (
                simulator.queue_length
                == simulator.pending_events + simulator._cancelled_in_queue
            )
        assert simulator.pending_events == 100

    def test_mass_cancellation_triggers_compaction(self):
        simulator = Simulator(compact_min_cancelled=64, compact_ratio=1.0)
        for _ in range(20):
            events = [
                simulator.schedule(1.0 + i * 1e-6, lambda: None) for i in range(200)
            ]
            for event in events[:-1]:
                event.cancel()
        assert simulator.compactions > 0
        # The heap is bounded by the live events, not the cancel history.
        assert simulator.queue_length < 1000
        assert simulator.pending_events == 20

    def test_cancelled_events_never_fire(self):
        simulator = Simulator()
        fired = []
        keep = simulator.schedule(1.0, lambda: fired.append("keep"))
        drop = simulator.schedule(0.5, lambda: fired.append("drop"))
        drop.cancel()
        simulator.run_until_idle()
        assert fired == ["keep"]
        assert keep.cancelled is False
        assert simulator.queue_length == 0
