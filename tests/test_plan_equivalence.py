"""Engine-level equivalence: every evaluation strategy must match bit-for-bit.

Two independent axes are swept:

* **planner** — ``"naive"`` (left-to-right nested loops) vs ``"greedy"``
  (cost-based compiled plans).  The compiled path may only change *how
  many tuples are scanned*, never what is derived.
* **pipeline** — ``"delta"`` (the legacy one-delta-at-a-time term-tree
  interpreter) vs ``"batched"`` (per-(predicate, action) batch drain with
  closure-compiled and exec-generated plan executors) vs ``"columnar"``
  (windowed column-block evaluation with generated batch kernels).  The
  optimized pipelines may only change dispatch cost, never processing
  order — the interpreter is the equivalence oracle for both.

Fixpoints, provenance tables (prov / ruleExec with their VIDs), and
value-based annotations all feed the paper's results and must be identical
across every combination — including equal-cost tie-breaks, which depend
on row enumeration order, and under ``PYTHONHASHSEED`` variation.

Covered here for all three protocols (MINCOST, PATHVECTOR, PACKETFORWARD):
steady-state fixpoints, churn (link deletion cascades, figs 9/10),
reference-based provenance, value-based polynomial annotations, and
randomized insert/delete/refresh interleavings (hypothesis).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode, polynomial_query
from repro.datalog import Fact, StandaloneNetwork
from repro.datalog.engine import AnnotationPolicy, NDlogEngine, PIPELINES
from repro.datalog.parser import parse_program
from repro.net import ring_topology
from repro.protocols import (
    mincost_program,
    packet_event,
    packetforward_program,
    pathvector_program,
)

PLANNERS = ("naive", "greedy")


def _standalone_snapshot(net: StandaloneNetwork) -> dict:
    names = set()
    for engine in net.engines.values():
        names.update(engine.catalog.names())
    return {name: net.all_rows(name) for name in sorted(names)}


def _run_standalone(program, planner: str, topology, deletions=()):
    net = StandaloneNetwork(topology.nodes, program, planner=planner)
    for source, destination, cost in topology.link_facts():
        net.insert(Fact("link", (source, destination, cost)))
    net.run()
    for source, destination, cost in deletions:
        net.delete(Fact("link", (source, destination, cost)))
        net.delete(Fact("link", (destination, source, cost)))
    net.run()
    return net


class TestStandaloneFixpointEquivalence:
    @pytest.mark.parametrize(
        "program_factory", [mincost_program, pathvector_program]
    )
    def test_steady_state_fixpoints_are_identical(self, program_factory):
        topology = ring_topology(10, seed=3)
        snapshots = {}
        for planner in PLANNERS:
            net = _run_standalone(program_factory(), planner, topology)
            snapshots[planner] = _standalone_snapshot(net)
        assert snapshots["naive"] == snapshots["greedy"]

    @pytest.mark.parametrize(
        "program_factory",
        [lambda: mincost_program(max_cost=16), pathvector_program],
    )
    def test_deletion_cascades_are_identical(self, program_factory):
        topology = ring_topology(8, seed=5)
        # delete one ring link: the network stays connected, routes shift
        source, destination, cost = topology.link_facts()[0]
        snapshots = {}
        for planner in PLANNERS:
            net = _run_standalone(
                program_factory(),
                planner,
                topology,
                deletions=[(source, destination, cost)],
            )
            snapshots[planner] = _standalone_snapshot(net)
        assert snapshots["naive"] == snapshots["greedy"]

    def test_packetforward_deliveries_are_identical(self):
        topology = ring_topology(8, seed=7)
        program = pathvector_program().extended(
            packetforward_program(), name="pv+fwd"
        )
        snapshots = {}
        for planner in PLANNERS:
            net = _run_standalone(program, planner, topology)
            for index, node in enumerate(topology.nodes):
                target = topology.nodes[(index + 3) % len(topology.nodes)]
                net.insert(packet_event(node, node, target, f"payload-{index}"))
            net.run()
            snapshots[planner] = _standalone_snapshot(net)
        assert snapshots["naive"] == snapshots["greedy"]
        assert len(snapshots["greedy"]["recvPacket"]) == len(topology.nodes)


def _network_snapshot(network: ExspanNetwork) -> dict:
    tables = set()
    for node in network.nodes.values():
        tables.update(node.engine.catalog.names())
    snapshot = {}
    for table in sorted(tables):
        snapshot[table] = sorted(network.tuples(table), key=repr)
    return snapshot


class TestProvenanceEquivalence:
    @pytest.mark.parametrize(
        "program_factory,queried",
        [
            (mincost_program, "bestPathCost"),
            (pathvector_program, "bestPathCost"),
        ],
    )
    def test_reference_provenance_and_query_results_match(
        self, program_factory, queried
    ):
        results = {}
        for planner in PLANNERS:
            network = ExspanNetwork(
                ring_topology(8, seed=11),
                program_factory(),
                config=ExspanConfig(mode=ProvenanceMode.REFERENCE, planner=planner),
            )
            network.seed_links()
            network.run_to_fixpoint()
            snapshot = _network_snapshot(network)
            # query the provenance polynomial of a deterministic tuple
            row = snapshot[queried][0]
            outcome = network.query_provenance(
                Fact(queried, row[1]), polynomial_query(name=f"poly-{planner}")
            )
            results[planner] = (snapshot, str(outcome.result))
        naive_snapshot, naive_poly = results["naive"]
        greedy_snapshot, greedy_poly = results["greedy"]
        assert naive_snapshot == greedy_snapshot  # includes prov / ruleExec VIDs
        assert naive_poly == greedy_poly

    def test_value_based_annotations_match(self):
        results = {}
        for planner in PLANNERS:
            network = ExspanNetwork(
                ring_topology(6, seed=13),
                mincost_program(),
                config=ExspanConfig(
                    mode=ProvenanceMode.VALUE,
                    value_policy="polynomial",
                    planner=planner,
                ),
            )
            network.seed_links()
            network.run_to_fixpoint()
            annotations = {}
            for address, node in sorted(network.nodes.items(), key=repr):
                engine = node.engine
                for row in engine.table_rows("bestPathCost"):
                    annotation = engine.annotation_of(Fact("bestPathCost", row))
                    annotations[(address, row)] = str(annotation)
            results[planner] = (_network_snapshot(network), annotations)
        assert results["naive"] == results["greedy"]


class TestBatchedPipelineEquivalence:
    """``batched`` and ``columnar`` vs ``delta``: byte-identical.

    The batched pipeline is the default; the legacy interpreter is retained
    precisely so this sweep can prove the compiled/generated executors —
    and the columnar batch kernels layered above them — change nothing but
    wall-clock.  Every loop runs all of ``PIPELINES`` and every pipeline
    must match the interpreter exactly.
    """

    @pytest.mark.parametrize(
        "program_factory",
        [mincost_program, pathvector_program],
        ids=["mincost", "pathvector"],
    )
    def test_fixpoints_identical_across_pipelines(self, program_factory):
        topology = ring_topology(10, seed=3)
        snapshots = {}
        for pipeline in PIPELINES:
            net = StandaloneNetwork(
                topology.nodes, program_factory(), pipeline=pipeline
            )
            for source, destination, cost in topology.link_facts():
                net.insert(Fact("link", (source, destination, cost)))
            net.run()
            snapshots[pipeline] = (_standalone_snapshot(net), net.planner_stats())
        # Same fixpoints AND the same evaluation counters: batching must not
        # change tuples_scanned / index_lookups (they feed BENCH artifacts).
        for pipeline in PIPELINES:
            assert snapshots[pipeline] == snapshots["delta"], pipeline

    @pytest.mark.parametrize(
        "program_factory",
        [lambda: mincost_program(max_cost=16), pathvector_program],
        ids=["mincost", "pathvector"],
    )
    def test_churn_cascades_identical_across_pipelines(self, program_factory):
        """The figs 9/10 workload shape: insert, fixpoint, delete, refixpoint."""
        topology = ring_topology(8, seed=5)
        source, destination, cost = topology.link_facts()[0]
        snapshots = {}
        for pipeline in PIPELINES:
            net = StandaloneNetwork(
                topology.nodes, program_factory(), pipeline=pipeline
            )
            for s, d, c in topology.link_facts():
                net.insert(Fact("link", (s, d, c)))
            net.run()
            net.delete(Fact("link", (source, destination, cost)))
            net.delete(Fact("link", (destination, source, cost)))
            net.run()
            snapshots[pipeline] = _standalone_snapshot(net)
        for pipeline in PIPELINES:
            assert snapshots[pipeline] == snapshots["delta"], pipeline

    def test_packetforward_identical_across_pipelines(self):
        topology = ring_topology(8, seed=7)
        program = pathvector_program().extended(
            packetforward_program(), name="pv+fwd"
        )
        snapshots = {}
        for pipeline in PIPELINES:
            net = StandaloneNetwork(topology.nodes, program, pipeline=pipeline)
            for s, d, c in topology.link_facts():
                net.insert(Fact("link", (s, d, c)))
            net.run()
            for index, node in enumerate(topology.nodes):
                target = topology.nodes[(index + 3) % len(topology.nodes)]
                net.insert(packet_event(node, node, target, f"payload-{index}"))
            net.run()
            snapshots[pipeline] = _standalone_snapshot(net)
        for pipeline in PIPELINES:
            assert snapshots[pipeline] == snapshots["delta"], pipeline
        assert len(snapshots["batched"]["recvPacket"]) == len(topology.nodes)

    @pytest.mark.parametrize("mode", [ProvenanceMode.REFERENCE, ProvenanceMode.VALUE])
    def test_provenance_identical_across_pipelines(self, mode):
        """prov / ruleExec VIDs and value annotations match exactly."""
        results = {}
        for pipeline in PIPELINES:
            kwargs = {"value_policy": "polynomial"} if mode is ProvenanceMode.VALUE else {}
            network = ExspanNetwork(
                ring_topology(8, seed=11),
                mincost_program(),
                config=ExspanConfig(mode=mode, pipeline=pipeline, **kwargs),
            )
            network.seed_links()
            network.run_to_fixpoint()
            snapshot = _network_snapshot(network)
            annotations = {}
            if mode is ProvenanceMode.VALUE:
                for address, node in sorted(network.nodes.items(), key=repr):
                    engine = node.engine
                    for row in engine.table_rows("bestPathCost"):
                        annotation = engine.annotation_of(Fact("bestPathCost", row))
                        annotations[(address, row)] = str(annotation)
            results[pipeline] = (snapshot, annotations)
        for pipeline in PIPELINES:
            assert results[pipeline] == results["delta"], pipeline

    def test_equivalence_invariant_under_hash_seed(self):
        """Snapshot digests agree across pipelines AND across hash seeds."""
        script = (
            "import hashlib, json\n"
            "from repro.datalog import Fact, StandaloneNetwork\n"
            "from repro.core.rewrite import rewrite_program\n"
            "from repro.protocols import pathvector_program\n"
            "from repro.net import ring_topology\n"
            "topology = ring_topology(6, seed=2)\n"
            "for pipeline in ('batched', 'delta', 'columnar'):\n"
            "    net = StandaloneNetwork(topology.nodes,\n"
            "        rewrite_program(pathvector_program()), pipeline=pipeline)\n"
            "    for s, d, c in topology.link_facts():\n"
            "        net.insert(Fact('link', (s, d, c)))\n"
            "    net.run()\n"
            "    names = set()\n"
            "    for engine in net.engines.values():\n"
            "        names.update(engine.catalog.names())\n"
            "    snapshot = {name: [repr(r) for r in net.all_rows(name)]\n"
            "                for name in sorted(names)}\n"
            "    payload = json.dumps(snapshot, sort_keys=True)\n"
            "    print(hashlib.sha256(payload.encode()).hexdigest())\n"
        )
        digests = set()
        for seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get(
                "PYTHONPATH", ""
            )
            output = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.split()
            assert len(output) == 3
            digests.update(output)
        # one digest: all three pipelines, all three hash seeds, same bytes
        assert len(digests) == 1


class _MergeCountPolicy(AnnotationPolicy):
    """Deterministic annotation policy exercising merge + refresh cascades."""

    propagate_updates = True

    def base(self, fact):
        return frozenset({str(fact)})

    def combine(self, rule, body_annotations, node):
        combined = frozenset()
        for annotation in body_annotations:
            if annotation:
                combined |= annotation
        return combined

    def merge(self, existing, new):
        return existing | new

    def size(self, annotation):
        return sum(len(item) for item in annotation)


_PROPERTY_PROGRAM = """
    r1 mid(@S,D) :- red(@S,D).
    r2 mid(@S,D) :- blue(@S,D).
    r3 top(@S,D) :- mid(@S,D).
"""

_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "refresh"]),
        st.sampled_from(["red", "blue"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=24,
)


class TestRandomInterleavings:
    @settings(max_examples=40, deadline=None)
    @given(operations=_ops)
    def test_batched_equals_delta_on_random_interleavings(self, operations):
        """Random insert/delete/refresh sequences agree across pipelines."""
        states = {}
        for pipeline in PIPELINES:
            engine = NDlogEngine(
                "n",
                parse_program(_PROPERTY_PROGRAM),
                annotation_policy=_MergeCountPolicy(),
                pipeline=pipeline,
            )
            for action, relation, key in operations:
                fact = Fact(relation, ("n", f"d{key}"))
                if action == "insert":
                    engine.insert(fact)
                elif action == "delete":
                    engine.delete(fact)
                else:
                    # A refresh racing ahead of (or following) inserts; the
                    # annotation carries the op index via the fact itself.
                    from repro.datalog.engine import Delta, REFRESH

                    engine.enqueue(
                        Delta(REFRESH, fact, frozenset({f"r:{relation}:{key}"}))
                    )
                engine.run()
            tables = {
                name: engine.table_rows(name)
                for name in ("red", "blue", "mid", "top")
            }
            annotations = {
                (name, row): str(engine.annotation_of(Fact(name, row)))
                for name in ("mid", "top")
                for row in engine.table_rows(name)
            }
            states[pipeline] = (tables, annotations, dict(engine.stats))
        for pipeline in PIPELINES:
            assert states[pipeline] == states["delta"], pipeline

    @settings(max_examples=40, deadline=None)
    @given(operations=_ops)
    def test_columnar_equals_batched_with_self_join(self, operations):
        """Columnar windowing on a self-join program, random interleavings.

        The self-join (``link`` twice in one rule body) forces the columnar
        segmenter into SEQUENTIAL mode — a rule reading the predicate its
        own head writes means in-window deltas conflict, so each block must
        replay one delta at a time.  Random insert/delete/refresh streams
        over it are the sharpest probe of window-boundary bookkeeping.
        """
        program = parse_program(
            """
            j1 two(@S,D) :- red(@S,M), red(@M,D).
            j2 red(@S,D) :- blue(@S,D).
            """
        )
        states = {}
        for pipeline in ("batched", "columnar"):
            engine = NDlogEngine("n", program, pipeline=pipeline)
            for action, relation, key in operations:
                fact = Fact(relation, ("n", f"d{key % 2}" if key > 1 else "n"))
                if action == "insert":
                    engine.insert(fact)
                elif action == "delete":
                    engine.delete(fact)
                else:
                    from repro.datalog.engine import Delta, REFRESH

                    engine.enqueue(Delta(REFRESH, fact))
                engine.run()
            states[pipeline] = (
                {
                    name: engine.table_rows(name)
                    for name in ("red", "blue", "two")
                },
                dict(engine.stats),
            )
        assert states["columnar"] == states["batched"]


class TestScanReduction:
    def test_planner_scans_at_least_2x_fewer_tuples_on_pathvector(self):
        """The acceptance bar: >= 2x fewer tuples scanned on path-vector."""
        topology = ring_topology(12, seed=1)
        scanned = {}
        for planner in PLANNERS:
            net = _run_standalone(pathvector_program(), planner, topology)
            scanned[planner] = net.planner_stats()["tuples_scanned"]
        assert scanned["greedy"] * 2 <= scanned["naive"]

    def test_stats_expose_planner_counters(self):
        net = _run_standalone(
            pathvector_program(), "greedy", ring_topology(6, seed=2)
        )
        stats = net.planner_stats()
        assert stats["plans_compiled"] > 0
        assert stats["indexes_registered"] > 0
        assert stats["index_lookups"] > 0
        assert stats["tuples_scanned"] > 0
