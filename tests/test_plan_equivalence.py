"""Engine-level equivalence: planned evaluation must match naive bit-for-bit.

The compiled-plan path may only change *how many tuples are scanned*, never
what is derived: fixpoints, provenance tables (prov / ruleExec with their
VIDs), and value-based annotations all feed the paper's results and must be
identical under ``planner="naive"`` and ``planner="greedy"`` — including
equal-cost tie-breaks, which depend on row enumeration order.

Covered here for all three protocols (MINCOST, PATHVECTOR, PACKETFORWARD):
steady-state fixpoints, churn (link deletion cascades), reference-based
provenance, and value-based polynomial annotations.
"""

from __future__ import annotations

import pytest

from repro.core import ExspanNetwork, ProvenanceMode, polynomial_query
from repro.datalog import Fact, StandaloneNetwork
from repro.net import ring_topology
from repro.protocols import (
    mincost_program,
    packet_event,
    packetforward_program,
    pathvector_program,
)

PLANNERS = ("naive", "greedy")


def _standalone_snapshot(net: StandaloneNetwork) -> dict:
    names = set()
    for engine in net.engines.values():
        names.update(engine.catalog.names())
    return {name: net.all_rows(name) for name in sorted(names)}


def _run_standalone(program, planner: str, topology, deletions=()):
    net = StandaloneNetwork(topology.nodes, program, planner=planner)
    for source, destination, cost in topology.link_facts():
        net.insert(Fact("link", (source, destination, cost)))
    net.run()
    for source, destination, cost in deletions:
        net.delete(Fact("link", (source, destination, cost)))
        net.delete(Fact("link", (destination, source, cost)))
    net.run()
    return net


class TestStandaloneFixpointEquivalence:
    @pytest.mark.parametrize(
        "program_factory", [mincost_program, pathvector_program]
    )
    def test_steady_state_fixpoints_are_identical(self, program_factory):
        topology = ring_topology(10, seed=3)
        snapshots = {}
        for planner in PLANNERS:
            net = _run_standalone(program_factory(), planner, topology)
            snapshots[planner] = _standalone_snapshot(net)
        assert snapshots["naive"] == snapshots["greedy"]

    @pytest.mark.parametrize(
        "program_factory",
        [lambda: mincost_program(max_cost=16), pathvector_program],
    )
    def test_deletion_cascades_are_identical(self, program_factory):
        topology = ring_topology(8, seed=5)
        # delete one ring link: the network stays connected, routes shift
        source, destination, cost = topology.link_facts()[0]
        snapshots = {}
        for planner in PLANNERS:
            net = _run_standalone(
                program_factory(),
                planner,
                topology,
                deletions=[(source, destination, cost)],
            )
            snapshots[planner] = _standalone_snapshot(net)
        assert snapshots["naive"] == snapshots["greedy"]

    def test_packetforward_deliveries_are_identical(self):
        topology = ring_topology(8, seed=7)
        program = pathvector_program().extended(
            packetforward_program(), name="pv+fwd"
        )
        snapshots = {}
        for planner in PLANNERS:
            net = _run_standalone(program, planner, topology)
            for index, node in enumerate(topology.nodes):
                target = topology.nodes[(index + 3) % len(topology.nodes)]
                net.insert(packet_event(node, node, target, f"payload-{index}"))
            net.run()
            snapshots[planner] = _standalone_snapshot(net)
        assert snapshots["naive"] == snapshots["greedy"]
        assert len(snapshots["greedy"]["recvPacket"]) == len(topology.nodes)


def _network_snapshot(network: ExspanNetwork) -> dict:
    tables = set()
    for node in network.nodes.values():
        tables.update(node.engine.catalog.names())
    snapshot = {}
    for table in sorted(tables):
        snapshot[table] = sorted(network.tuples(table), key=repr)
    return snapshot


class TestProvenanceEquivalence:
    @pytest.mark.parametrize(
        "program_factory,queried",
        [
            (mincost_program, "bestPathCost"),
            (pathvector_program, "bestPathCost"),
        ],
    )
    def test_reference_provenance_and_query_results_match(
        self, program_factory, queried
    ):
        results = {}
        for planner in PLANNERS:
            network = ExspanNetwork(
                ring_topology(8, seed=11),
                program_factory(),
                mode=ProvenanceMode.REFERENCE,
                planner=planner,
            )
            network.seed_links()
            network.run_to_fixpoint()
            snapshot = _network_snapshot(network)
            # query the provenance polynomial of a deterministic tuple
            row = snapshot[queried][0]
            outcome = network.query_provenance(
                Fact(queried, row[1]), polynomial_query(name=f"poly-{planner}")
            )
            results[planner] = (snapshot, str(outcome.result))
        naive_snapshot, naive_poly = results["naive"]
        greedy_snapshot, greedy_poly = results["greedy"]
        assert naive_snapshot == greedy_snapshot  # includes prov / ruleExec VIDs
        assert naive_poly == greedy_poly

    def test_value_based_annotations_match(self):
        results = {}
        for planner in PLANNERS:
            network = ExspanNetwork(
                ring_topology(6, seed=13),
                mincost_program(),
                mode=ProvenanceMode.VALUE,
                value_policy="polynomial",
                planner=planner,
            )
            network.seed_links()
            network.run_to_fixpoint()
            annotations = {}
            for address, node in sorted(network.nodes.items(), key=repr):
                engine = node.engine
                for row in engine.table_rows("bestPathCost"):
                    annotation = engine.annotation_of(Fact("bestPathCost", row))
                    annotations[(address, row)] = str(annotation)
            results[planner] = (_network_snapshot(network), annotations)
        assert results["naive"] == results["greedy"]


class TestScanReduction:
    def test_planner_scans_at_least_2x_fewer_tuples_on_pathvector(self):
        """The acceptance bar: >= 2x fewer tuples scanned on path-vector."""
        topology = ring_topology(12, seed=1)
        scanned = {}
        for planner in PLANNERS:
            net = _run_standalone(pathvector_program(), planner, topology)
            scanned[planner] = net.planner_stats()["tuples_scanned"]
        assert scanned["greedy"] * 2 <= scanned["naive"]

    def test_stats_expose_planner_counters(self):
        net = _run_standalone(
            pathvector_program(), "greedy", ring_topology(6, seed=2)
        )
        stats = net.planner_stats()
        assert stats["plans_compiled"] > 0
        assert stats["indexes_registered"] > 0
        assert stats["index_lookups"] > 0
        assert stats["tuples_scanned"] > 0
