"""Tests for the discrete-event simulator and message size accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net import HEADER_OVERHEAD, Message, Simulator, payload_size
from repro.net.errors import SimulationError


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(0.5, lambda: order.append("b"))
        simulator.schedule(0.1, lambda: order.append("a"))
        simulator.schedule(0.9, lambda: order.append("c"))
        simulator.run_until_idle()
        assert order == ["a", "b", "c"]
        assert simulator.now == pytest.approx(0.9)

    def test_fifo_tie_breaking_at_same_time(self):
        simulator = Simulator()
        order = []
        for index in range(5):
            simulator.schedule(1.0, lambda index=index: order.append(index))
        simulator.run_until_idle()
        assert order == [0, 1, 2, 3, 4]

    def test_events_can_schedule_more_events(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append("first")
            simulator.schedule(0.5, lambda: seen.append("second"))

        simulator.schedule(1.0, first)
        simulator.run_until_idle()
        assert seen == ["first", "second"]
        assert simulator.now == pytest.approx(1.5)

    def test_run_until_limit(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(2.0, lambda: fired.append(2))
        simulator.run(until=1.5)
        assert fired == [1]
        assert simulator.now == pytest.approx(1.5)
        simulator.run_until_idle()
        assert fired == [1, 2]

    def test_cancelled_event_is_skipped(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        simulator.run_until_idle()
        assert fired == []

    def test_negative_delay_rejected(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run_until_idle()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)

    def test_max_events_bound(self):
        simulator = Simulator()
        for index in range(10):
            simulator.schedule(index * 0.1, lambda: None)
        executed = simulator.run(max_events=3)
        assert executed == 3
        assert simulator.pending_events == 7

    def test_advance_clock(self):
        simulator = Simulator()
        simulator.advance_to(5.0)
        assert simulator.now == 5.0
        with pytest.raises(SimulationError):
            simulator.advance_to(1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    def test_execution_times_are_monotone(self, delays):
        simulator = Simulator()
        times = []
        for delay in delays:
            simulator.schedule(delay, lambda: times.append(simulator.now))
        simulator.run_until_idle()
        assert times == sorted(times)


class TestPayloadSize:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (None, 1),
            (True, 1),
            (7, 4),
            (3.5, 8),
            ("abcd", 4),
            (b"xyz", 3),
        ],
    )
    def test_scalar_sizes(self, value, expected):
        assert payload_size(value) == expected

    def test_list_size_includes_framing(self):
        assert payload_size(["ab", "cd"]) == 2 + 2 + 2

    def test_dict_size(self):
        assert payload_size({"k": "vv"}) == 2 + 1 + 2

    def test_nested_structures(self):
        value = {"vid": "x" * 20, "children": ["y" * 20, "z" * 20]}
        assert payload_size(value) == 2 + 3 + 20 + 8 + (2 + 40)

    def test_object_with_wire_size_hook(self):
        class Sized:
            def wire_size(self):
                return 123

        assert payload_size(Sized()) == 123

    @given(st.lists(st.text(max_size=10), max_size=10))
    def test_list_size_monotone_in_content(self, items):
        assert payload_size(items) >= payload_size([])


class TestMessage:
    def test_compute_size_includes_header_and_kind(self):
        message = Message("a", "b", "delta", {"x": "yy"})
        size = message.compute_size()
        assert size == HEADER_OVERHEAD + len("delta") + payload_size({"x": "yy"})

    def test_explicit_size_is_preserved(self):
        message = Message("a", "b", "delta", None, size=999)
        assert message.compute_size() == 999
