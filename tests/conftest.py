"""Pytest fixtures shared across the test suite (see paper_example.py for data)."""

from paper_example import (  # noqa: F401  (re-exported fixtures)
    figure3_exspan_reference,
    figure3_standalone_mincost,
    small_ring_pathvector,
    small_ring_reference,
)
