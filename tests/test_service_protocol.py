"""Wire-protocol robustness: framing, handshake, and hostile clients.

Everything here talks raw sockets on purpose — the point is to verify
the server's behavior against inputs :class:`ServiceClient` would never
send: malformed frames, truncated frames, oversized length prefixes,
unknown ops, and mid-request disconnects.
"""

import socket
import struct

import pytest

from repro.core.config import ExspanConfig
from repro.net.topology import ring_topology
from repro.protocols.mincost import mincost_program
from repro.core.api import ExspanNetwork
from repro.service import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    ProtocolError,
    ServiceClient,
    ServiceError,
    ServiceThread,
    encode_frame,
    recv_frame,
    send_frame,
)


@pytest.fixture(scope="module")
def service():
    network = ExspanNetwork(
        ring_topology(4, seed=0), mincost_program(), config=ExspanConfig(seed=0)
    )
    network.seed_links()
    network.run_to_fixpoint()
    with ServiceThread(network) as thread:
        yield thread


@pytest.fixture
def raw(service):
    sock = socket.create_connection(service.address, timeout=30)
    try:
        greeting = recv_frame(sock)
        assert greeting["type"] == "greeting"
        yield sock
    finally:
        sock.close()


def _hello(sock):
    send_frame(sock, {"id": 0, "op": "hello", "params": {"protocol": PROTOCOL_VERSION}})
    response = recv_frame(sock)
    assert response["ok"], response
    return response


class TestFraming:
    def test_encode_decode_round_trip(self):
        frame = encode_frame({"id": 1, "op": "ping", "params": {}})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(FrameError):
            encode_frame({"blob": "x" * 64}, max_frame=32)

    def test_protocol_error_requires_known_code(self):
        with pytest.raises(ValueError):
            ProtocolError("not-a-real-code", "nope")

    def test_malformed_json_frame_gets_bad_frame_error(self, raw):
        _hello(raw)
        body = b"this is not json"
        raw.sendall(struct.pack(">I", len(body)) + body)
        response = recv_frame(raw)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-frame"

    def test_non_object_json_frame_rejected(self, raw):
        _hello(raw)
        body = b'["a", "list"]'
        raw.sendall(struct.pack(">I", len(body)) + body)
        response = recv_frame(raw)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-frame"

    def test_oversized_length_prefix_rejected(self, raw):
        _hello(raw)
        raw.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        response = recv_frame(raw)
        assert response["ok"] is False
        assert response["error"]["code"] == "frame-too-large"

    def test_truncated_frame_then_disconnect(self, service):
        """A client dying mid-frame must not wedge the server."""
        sock = socket.create_connection(service.address, timeout=30)
        recv_frame(sock)
        sock.sendall(struct.pack(">I", 1024) + b'{"id"')  # promised 1024, sent 6
        sock.close()
        # The server must still serve the next client normally.
        with ServiceClient(*service.address) as client:
            assert client.call("ping")["now"] >= 0

    def test_mid_request_disconnect_during_query(self, service):
        """Disconnecting right after sending a request must not wedge others."""
        sock = socket.create_connection(service.address, timeout=30)
        recv_frame(sock)
        send_frame(sock, {"id": 0, "op": "hello", "params": {"protocol": PROTOCOL_VERSION}})
        recv_frame(sock)
        send_frame(
            sock,
            {
                "id": 1,
                "op": "query",
                "params": {
                    "fact": {"name": "bestPathCost", "values": ["n0", "n1", 1]},
                    "spec": {"kind": "polynomial"},
                },
            },
        )
        sock.close()  # gone before the response lands
        with ServiceClient(*service.address) as client:
            result = client.call(
                "query",
                fact={"name": "bestPathCost", "values": ["n0", "n1", 1]},
                spec={"kind": "polynomial"},
            )
            assert result["annotation"]["kind"] == "polynomial"


class TestHandshake:
    def test_greeting_carries_protocol_and_network_info(self, service):
        with ServiceClient(*service.address) as client:
            assert client.greeting["protocol"] == PROTOCOL_VERSION
            assert client.greeting["network"]["node_count"] == 4
            assert client.hello["ops"]  # op catalogue advertised

    def test_wrong_protocol_version_rejected(self, raw):
        send_frame(raw, {"id": 0, "op": "hello", "params": {"protocol": 999}})
        response = recv_frame(raw)
        assert response["ok"] is False
        assert response["error"]["code"] == "unsupported-protocol"

    def test_request_before_hello_rejected(self, raw):
        send_frame(raw, {"id": 7, "op": "ping", "params": {}})
        response = recv_frame(raw)
        assert response["ok"] is False
        assert response["error"]["code"] == "handshake-required"
        assert response["id"] == 7


class TestRequests:
    def test_unknown_op(self, service):
        with ServiceClient(*service.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.call("frobnicate")
            assert excinfo.value.code == "unknown-op"

    def test_missing_id_is_bad_request(self, raw):
        _hello(raw)
        send_frame(raw, {"op": "ping", "params": {}})
        response = recv_frame(raw)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"

    def test_non_object_params_is_bad_request(self, raw):
        _hello(raw)
        send_frame(raw, {"id": 1, "op": "ping", "params": [1, 2]})
        response = recv_frame(raw)
        assert response["error"]["code"] == "bad-request"

    def test_bad_query_params_surface_as_query_error(self, service):
        with ServiceClient(*service.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.call("tuples", table="nonexistent")
            assert excinfo.value.code == "query-error"

    def test_bad_fact_payload(self, service):
        with ServiceClient(*service.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.call("insert", fact={"values": [1]})  # no name
            assert excinfo.value.code in ("bad-request", "query-error")

    def test_response_ids_echo_requests(self, raw):
        _hello(raw)
        for request_id in (5, "abc", 17):
            send_frame(raw, {"id": request_id, "op": "ping", "params": {}})
            response = recv_frame(raw)
            assert response["id"] == request_id
            assert response["ok"] is True
