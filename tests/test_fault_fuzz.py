"""Property-based chaos: random fault plans over random update interleavings.

For every protocol, every generated fault plan, and every generated
insert/delete interleaving of link facts, the faulted run must converge
to the same final protocol tables (convergence digest) as a fault-free
run applying the *same* interleaving.  This is the subsystem's headline
oracle (see docs/FAULTS.md) explored by Hypothesis instead of a
hand-picked matrix.

Crashes always carry a restart and the topology is the tie-free chaos
ring — a permanently dead node or an equal-cost tie would make the
oracle unsound by design, not reveal a bug.  ``derandomize=True`` keeps
CI deterministic (repo policy: no flaky gates); bump ``max_examples``
locally to explore further.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode
from repro.datalog import Fact
from repro.experiments.trials import chaos_topology
from repro.faults import convergence_digest
from repro.protocols.mincost import mincost_program
from repro.protocols.packetforward import packet_event, packetforward_program
from repro.protocols.pathvector import pathvector_program

SIZE = 6
NODES = [f"n{i}" for i in range(SIZE)]
#: Directed link facts of the chaos ring, mirroring seed_links().
RING_LINKS = []
for i in range(SIZE):
    a, b, cost = f"n{i}", f"n{(i + 1) % SIZE}", 2 ** (i % SIZE)
    RING_LINKS.append((a, b, cost))
    RING_LINKS.append((b, a, cost))


def resolve_program(name):
    if name == "mincost":
        return mincost_program()
    if name == "pathvector":
        return pathvector_program()
    return pathvector_program().extended(packetforward_program(), "pv+fwd")


@st.composite
def fault_plans(draw):
    """A quiescing fault plan: bounded link faults, crashes always restart."""
    parts = [f"seed={draw(st.integers(0, 2**16))}", "attempts=8"]
    if draw(st.booleans()):
        prob = draw(st.sampled_from([0.1, 0.2, 0.3]))
        parts.append(f"drop:*->*:p={prob},n={draw(st.integers(3, 15))}")
    if draw(st.booleans()):
        prob = draw(st.sampled_from([0.1, 0.2]))
        parts.append(f"dup:*->*:p={prob},n={draw(st.integers(3, 12))}")
    if draw(st.booleans()):
        delay = draw(st.sampled_from([0.001, 0.002, 0.004]))
        parts.append(f"delay:*->*:p=0.2,d={delay}")
    if draw(st.booleans()):
        node = draw(st.sampled_from(NODES[1:]))
        at = draw(st.sampled_from([0.0005, 0.001, 0.002]))
        restart = draw(st.sampled_from([0.01, 0.02]))
        parts.append(f"crash:{node}@{at}:restart={restart}")
    if draw(st.booleans()):
        parts.append(f"straggler:{draw(st.sampled_from(NODES))}:d=0.002")
    return "; ".join(parts)


#: (kind, link index) pairs; normalized against the live link set below so
#: deletes hit present links and inserts restore absent ones.
interleavings = st.lists(
    st.tuples(
        st.sampled_from(["delete", "insert"]),
        st.integers(0, len(RING_LINKS) - 1),
    ),
    max_size=4,
)


def run_interleaving(program_name, ops, faults):
    network = ExspanNetwork(
        chaos_topology(SIZE, seed=0),
        resolve_program(program_name),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE, seed=0),
    )
    if faults is not None:
        network.install_faults(faults)
    network.seed_links()
    network.run_to_fixpoint()
    present = set(range(len(RING_LINKS)))
    for kind, index in ops:
        if kind == "delete" and index in present:
            present.discard(index)
            network.delete_fact(Fact("link", RING_LINKS[index]))
        elif kind == "insert" and index not in present:
            present.add(index)
            network.insert_fact(Fact("link", RING_LINKS[index]))
        else:
            continue
        network.run_to_fixpoint()
    if program_name == "packetforward":
        for packet in (
            packet_event("n0", "n0", f"n{SIZE // 2}", "x" * 16),
            packet_event(f"n{SIZE - 1}", f"n{SIZE - 1}", "n1", "x" * 16),
        ):
            network.insert_fact(packet)
            network.run_to_fixpoint()
    return network


@pytest.mark.parametrize("program_name", ["mincost", "pathvector", "packetforward"])
@given(plan=fault_plans(), ops=interleavings)
@settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_plans_over_random_interleavings_converge(program_name, plan, ops):
    expected = convergence_digest(run_interleaving(program_name, ops, None))
    faulted = run_interleaving(program_name, ops, plan)
    assert convergence_digest(faulted) == expected, (
        f"divergence under plan {plan!r} with ops {ops!r}"
    )
