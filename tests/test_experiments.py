"""Tests for the experiment harness: metrics, workloads, figure runners, reporting."""

from __future__ import annotations

import pytest

from repro.core import ExspanNetwork, ProvenanceMode, polynomial_query
from repro.experiments import (
    FIGURE_RUNNERS,
    FigureResult,
    MODE_LABELS,
    PacketWorkload,
    QueryWorkload,
    Series,
    build_network,
    check_shape,
    figure_13_traversal_bandwidth,
    figure_16_testbed_bandwidth,
    figure_17_testbed_fixpoint,
    format_table,
    make_churn,
    paper_expectations,
    render_report,
    run_figures,
)
from repro.experiments.figures import _size_topology
from repro.net import ring_topology
from repro.protocols import mincost_program, packetforward_program, pathvector_program


class TestMetrics:
    def test_series_accumulates_points(self):
        series = Series("x")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.xs() == [1, 2]
        assert series.mean_y() == 15.0
        assert series.final_y() == 20.0
        assert series.y_at(1) == 10.0
        assert series.y_at(99) is None

    def test_figure_result_table_rendering(self):
        result = FigureResult("Figure X", "title", "Nodes", "MB")
        result.add_point("A", 10, 1.0)
        result.add_point("B", 10, 2.0)
        result.add_point("A", 20, 3.0)
        rows = result.to_rows()
        assert rows[0] == ["Nodes", "A", "B"]
        assert len(rows) == 3
        rendered = result.render()
        assert "Figure X" in rendered and "Nodes" in rendered
        assert result.summary()["A"] == 2.0

    def test_format_table_alignment(self):
        text = format_table([["a", "bb"], ["ccc", "d"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "-+-" in lines[1]

    def test_empty_table(self):
        assert format_table([]) == ""


class TestWorkloads:
    @pytest.fixture
    def small_network(self):
        return build_network(
            ring_topology(6, seed=2), mincost_program(), ProvenanceMode.REFERENCE
        )

    def test_query_workload_issues_and_completes(self, small_network):
        workload = QueryWorkload(
            small_network,
            polynomial_query(name="wl"),
            queries_per_second=4.0,
            duration=0.5,
            seed=1,
        )
        outcomes = workload.run()
        assert len(outcomes) > 0
        assert workload.latency_stats().count() == len(outcomes)
        assert all(outcome.latency >= 0 for outcome in outcomes)

    def test_query_workload_scheduled_count_matches_rate(self, small_network):
        workload = QueryWorkload(
            small_network,
            polynomial_query(name="wl2"),
            queries_per_second=2.0,
            duration=1.0,
            seed=1,
        )
        scheduled = workload.schedule()
        # 6 nodes x 2 queries/s x 1 s
        assert scheduled == 12
        small_network.simulator.run_until_idle()
        assert len(workload.outcomes) == scheduled

    def test_packet_workload_delivers_packets(self):
        program = pathvector_program().extended(packetforward_program(), "pv+fwd")
        network = build_network(ring_topology(6, seed=2), program, ProvenanceMode.NONE)
        network.stats.reset()
        workload = PacketWorkload(
            network, payload_bytes=256, packets_per_second=4.0, duration=0.5, seed=3
        )
        sent = workload.run()
        assert sent > 0
        assert workload.delivered() == sent
        assert network.stats.total_bytes() > sent * 256

    def test_make_churn_wires_network_callbacks(self):
        network = build_network(
            _size_topology(24, 0), mincost_program(max_cost=16), ProvenanceMode.NONE
        )
        before_links = network.topology.link_count()
        churn = make_churn(network, links_per_round=2, interval=0.1, seed=4)
        churn.start(rounds=2)
        network.simulator.run_until_idle()
        assert len(churn.events) == 4
        added = len(churn.additions())
        deleted = len(churn.deletions())
        assert network.topology.link_count() == before_links + added - deleted


class TestFigureRunners:
    def test_mode_labels_cover_three_modes(self):
        assert set(MODE_LABELS.values()) == {
            "Value-based Prov. (BDD)",
            "Ref-based Prov.",
            "No Prov.",
        }

    def test_figure_17_small(self):
        result = figure_17_testbed_fixpoint(sizes=(6, 10))
        assert result.figure_id == "Figure 17"
        assert set(result.series) == set(MODE_LABELS.values())
        for series in result.series.values():
            assert len(series.points) == 2
        checks = check_shape(result)
        assert all(holds for _, holds in checks)

    def test_figure_16_small(self):
        result = figure_16_testbed_bandwidth(size=8)
        assert len(result.series) == 3
        assert any("total KB per node" in key for key in result.notes)

    def test_figure_13_small(self):
        result = figure_13_traversal_bandwidth(grid_side=3, duration=0.5)
        assert set(result.series) == {"BFS", "DFS", "DFS-Threshold"}

    def test_run_figures_selection_and_unknown_id(self):
        results = run_figures(["17"], verbose=False)
        assert len(results) == 1
        with pytest.raises(KeyError):
            run_figures(["99"], verbose=False)

    def test_all_figures_have_runners_and_expectations(self):
        expectations = paper_expectations()
        for figure_number in range(6, 18):
            assert str(figure_number) in FIGURE_RUNNERS
            assert f"Figure {figure_number}" in expectations

    def test_render_report_includes_checks(self):
        result = figure_17_testbed_fixpoint(sizes=(6,))
        report = render_report([result])
        assert "Figure 17" in report
        assert "[OK " in report or "[FAIL" in report


class TestShapeChecks:
    def test_check_shape_unknown_figure_returns_empty(self):
        result = FigureResult("Figure 99", "t", "x", "y")
        assert check_shape(result) == []

    def test_shape_check_failure_detected(self):
        result = FigureResult("Figure 11", "t", "x", "y")
        result.add_point("With caching", 0.0, 10.0)
        result.add_point("Without caching", 0.0, 1.0)
        checks = dict(check_shape(result))
        assert checks["caching reduces query bandwidth"] is False
