"""Tests for the concurrent provenance query engine.

Covers the concurrency tentpole end to end:

* concurrent-vs-serial **equivalence sweep**: interleaved root queries with
  mixed specs (cached/uncached, all four traversal orders) are byte-identical
  to the same queries issued serially;
* a hypothesis test over random query/update interleavings exercising cache
  invalidation under concurrency;
* bounded-LRU cache semantics: eviction, the per-vertex key index,
  generation-exact dependents on re-put, and hit-count consistency;
* the stale-dependent fix: invalidations landing mid-resolution taint the
  in-flight result instead of letting caches retain pre-update state;
* per-destination batching at the host layer;
* the simulator's live-event counter and tombstone compaction under
  schedule/cancel churn.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from paper_example import figure3_topology
from repro.core import (
    ExspanConfig,
    ExspanNetwork,
    ProvenanceMode,
    QueryResultCache,
    derivation_count_query,
    node_set_query,
    polynomial_query,
)
from repro.core.query import TraversalOrder
from repro.datalog import Fact
from repro.experiments.workloads import BurstQueryWorkload
from repro.net import Simulator, grid_topology, ring_topology
from repro.net.message import HEADER_OVERHEAD, batch_size, payload_size
from repro.protocols import mincost_program


def _reference_network(topology, **knobs) -> ExspanNetwork:
    network = ExspanNetwork(
        topology,
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE, **knobs),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


def _mixed_specs():
    """One spec per traversal order, mixing cached and uncached variants."""
    return [
        polynomial_query(name="sweep-poly-c", use_cache=True),
        polynomial_query(name="sweep-poly-u", use_cache=False),
        derivation_count_query(name="sweep-dfs-u", traversal=TraversalOrder.DFS),
        derivation_count_query(
            name="sweep-thr-c",
            traversal=TraversalOrder.DFS_THRESHOLD,
            threshold=3,
            use_cache=True,
        ),
        node_set_query(name="sweep-ns-u"),
        derivation_count_query(
            name="sweep-mw-u",
            traversal=TraversalOrder.RANDOM_MOONWALK,
            moonwalk_width=2,
        ),
    ]


def _plan_mixed_queries(network: ExspanNetwork, specs, count: int, seed: int):
    """Deterministic (issuer, target, fact, spec) plan over all specs."""
    rng = random.Random(seed)
    rows = network.tuples("bestPathCost")
    addresses = network.addresses()
    planned = []
    for index in range(count):
        target, row = rng.choice(rows)
        issuer = rng.choice(addresses)
        planned.append((issuer, target, Fact("bestPathCost", row), specs[index % len(specs)]))
    return planned


def _run_plan(network: ExspanNetwork, planned, serial: bool):
    """Issue the plan; returns [(spec name, vid, repr(result)), ...]."""
    for _, _, _, spec in planned:
        network.register_query_spec(spec)
    buckets = [[] for _ in planned]
    for index, (issuer, target, fact, spec) in enumerate(planned):
        def issue(issuer=issuer, target=target, fact=fact, spec=spec, bucket=buckets[index]):
            network.node(issuer).query_service.query_fact(
                fact, target, spec.name, bucket.append
            )
        if serial:
            issue()
            network.simulator.run_until_idle()
        else:
            network.simulator.schedule_at(network.now, issue)
    if not serial:
        network.simulator.run_until_idle()
    assert all(len(bucket) == 1 for bucket in buckets), "every query completes"
    return [
        (spec.name, bucket[0].vid, repr(bucket[0].result))
        for (_, _, _, spec), bucket in zip(planned, buckets)
    ]


class TestConcurrentSerialEquivalence:
    """Concurrent issuance must be bit-identical to serial resolution."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_spec_sweep_on_grid(self, seed):
        make = lambda: _reference_network(grid_topology(4, 4))  # noqa: E731
        concurrent = _run_plan(
            make(), _plan_mixed_queries(make(), _mixed_specs(), 18, seed), serial=False
        )
        serial = _run_plan(
            make(), _plan_mixed_queries(make(), _mixed_specs(), 18, seed), serial=True
        )
        assert concurrent == serial

    def test_mixed_spec_sweep_on_ring(self):
        make = lambda: _reference_network(ring_topology(10, seed=1))  # noqa: E731
        concurrent = _run_plan(
            make(), _plan_mixed_queries(make(), _mixed_specs(), 12, 7), serial=False
        )
        serial = _run_plan(
            make(), _plan_mixed_queries(make(), _mixed_specs(), 12, 7), serial=True
        )
        assert concurrent == serial

    def test_burst_workload_equivalence_and_savings(self):
        """The k-querier burst: identical results, strictly less traffic."""
        spec = lambda: derivation_count_query(name="bw-eq", use_cache=True)  # noqa: E731
        concurrent_net = _reference_network(grid_topology(4, 4))
        concurrent_net.stats.reset()
        concurrent = BurstQueryWorkload(
            concurrent_net, spec(), queriers=6, queries_per_querier=3, waves=2, seed=2
        )
        concurrent.run()
        serial_net = _reference_network(grid_topology(4, 4))
        serial_net.stats.reset()
        serial = BurstQueryWorkload(
            serial_net, spec(), queriers=6, queries_per_querier=3, waves=2, seed=2
        )
        serial.run(serial=True)
        assert [(o.vid, repr(o.result)) for o in concurrent.outcomes] == [
            (o.vid, repr(o.result)) for o in serial.outcomes
        ]
        # the concurrent engine answers the same queries with less traffic
        assert concurrent_net.query_messages() < serial_net.query_messages()
        assert concurrent_net.query_bytes() < serial_net.query_bytes()
        stats = concurrent_net.query_service_stats()
        assert stats["coalesced_inflight"] + stats["coalesced_roots"] > 0
        assert stats["cache_hits"] > 0

    @pytest.mark.parametrize("max_depth", [3, 5, 7])
    def test_equivalence_when_depth_budget_binds(self, max_depth):
        """Regression: depth-truncated results must not leak through the cache.

        With a binding ``max_depth``, a vertex reached under different
        remaining budgets resolves to different (truncated) values.  The
        cache stores only complete subgraphs tagged with their height and
        serves them only to requesters whose budget covers that height, so
        concurrent and serial issuance stay bit-identical even here.
        """

        def plan(network):
            rng = random.Random(4)
            rows = network.tuples("bestPathCost")
            addresses = network.addresses()
            spec = polynomial_query(name="deep", use_cache=True)
            spec.max_depth = max_depth
            planned = []
            for _ in range(8):
                target, row = rng.choice(rows)
                issuer = rng.choice(addresses)
                planned.append((issuer, target, Fact("bestPathCost", row), spec))
            return planned

        make = lambda: _reference_network(ring_topology(10, seed=1))  # noqa: E731
        concurrent = _run_plan(make(), plan(make()), serial=False)
        serial = _run_plan(make(), plan(make()), serial=True)
        assert concurrent == serial

    def test_truncated_results_are_never_cached(self):
        """A depth-0 truncation anywhere taints the whole resolution."""
        network = _reference_network(ring_topology(8, seed=2))
        spec = polynomial_query(name="shallow", use_cache=True)
        spec.max_depth = 2  # cannot cover any derived tuple's subgraph
        rows = network.tuples("bestPathCost")
        for _, row in rows[:5]:
            network.query_provenance(Fact("bestPathCost", row), spec)
        for node in network.nodes.values():
            for entry_key in list(node.query_service.cache._entries):
                entry = node.query_service.cache._entries[entry_key]
                assert entry.height <= spec.max_depth

    def test_coalescing_and_batching_knobs_preserve_results(self):
        """Every knob combination answers identically (message counts differ)."""
        results = {}
        for coalesce in (True, False):
            for batch in (True, False):
                network = _reference_network(
                    grid_topology(4, 4),
                    query_coalescing=coalesce,
                    query_batching=batch,
                )
                workload = BurstQueryWorkload(
                    network,
                    derivation_count_query(name="knobs", use_cache=True),
                    queriers=5,
                    queries_per_querier=3,
                    waves=2,
                    seed=5,
                )
                workload.run()
                results[(coalesce, batch)] = [
                    (o.vid, repr(o.result)) for o in workload.outcomes
                ]
        reference = results[(True, True)]
        assert all(value == reference for value in results.values())


class TestInvalidationUnderConcurrency:
    """Random query/update interleavings must never leave a stale cache."""

    @staticmethod
    def _assert_cache_consistent(network: ExspanNetwork, facts, cached_spec) -> None:
        """Answers served through *cached_spec* must match a fresh traversal."""
        for index, fact in enumerate(facts):
            cached = network.query_provenance(fact, cached_spec)
            uncached = network.query_provenance(
                fact, polynomial_query(name=f"fresh-{index}", use_cache=False)
            )
            assert repr(cached.result) == repr(uncached.result)
        for node in network.nodes.values():
            stats = node.query_service.cache.stats()
            assert stats["hits"] == stats["live_hits"] + stats["retired_hits"]

    @settings(max_examples=10, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["query", "toggle", "drain"]), st.integers(0, 9)),
            min_size=2,
            max_size=8,
        )
    )
    def test_random_interleavings(self, ops):
        network = _reference_network(ring_topology(8, seed=3))
        spec = polynomial_query(name="hyp-cached", use_cache=True)
        network.register_query_spec(spec)
        rows = network.tuples("bestPathCost")
        addresses = network.addresses()
        chord = (addresses[0], addresses[4])
        chord_up = False
        queried = []
        for op, value in ops:
            if op == "query":
                target, row = rows[value % len(rows)]
                fact = Fact("bestPathCost", row)
                queried.append(fact)
                issuer = addresses[value % len(addresses)]
                network.node(issuer).query_service.query_fact(
                    fact, target, spec.name, lambda outcome: None
                )
            elif op == "toggle":
                # A link changes while queries are (possibly) in flight:
                # the invalidation wave races the ongoing traversals.
                if chord_up:
                    network.remove_link(*chord)
                else:
                    network.add_link(*chord, cost=1 + value % 3)
                chord_up = not chord_up
            else:
                network.simulator.run_until_idle()
        network.simulator.run_until_idle()
        self._assert_cache_consistent(network, queried[:4], spec)

    def test_midflight_invalidation_never_caches_stale(self):
        """Deterministic stale-dependent regression (the PR title's bugfix).

        A cached query is racing a link deletion: for a sweep of deletion
        times covering 'before the walk starts' through 'after it ends',
        caches must end consistent with a fresh traversal.  At least one
        timing in the sweep must actually hit the in-flight window (the
        engine counts a stale drop), proving the dirty path is exercised.
        """
        stale_drops_seen = 0
        target_fact = Fact("bestPathCost", ("a", "c", 5))
        for step in range(10):
            network = _reference_network(figure3_topology())
            spec = polynomial_query(name="race", use_cache=True)
            network.register_query_spec(spec)
            network.node("d").query_service.query_fact(
                target_fact, "a", spec.name, lambda outcome: None
            )
            # the cold walk spans ~6ms of simulated time; sweep the deletion
            # across (and beyond) that window
            delay = 0.0008 * step
            network.simulator.schedule(delay, lambda: network.remove_link("a", "c"))
            network.simulator.run_until_idle()
            stats = network.query_service_stats()
            stale_drops_seen += stats["stale_drops"]
            self._assert_cache_consistent(network, [target_fact], spec)
        assert stale_drops_seen > 0


class TestMissingVertexDependents:
    def test_missing_vertex_keeps_reverse_pointer_for_late_arrival(self):
        """An ancestor caching a missing-child answer must stay reachable:
        the missing key keeps the parent reverse pointer so a later-arriving
        prov/ruleExec row can invalidate the stale ancestor."""
        network = _reference_network(figure3_topology())
        spec = polynomial_query(name="miss-dep", use_cache=True)
        network.register_query_spec(spec)
        service = network.node("a").query_service
        parent = ("d", ("r", "miss-dep", "rid-parent"))
        results = []
        service._resolve_vid(
            "no-such-vid",
            spec,
            lambda result, height: results.append((result, height)),
            parent=parent,
            depth=8,
        )
        assert len(results) == 1  # missing answers resolve synchronously
        key = ("v", "miss-dep", "no-such-vid")
        assert service.cache.dependents_of(key) == (parent,)
        assert not service.cache.contains(key)  # the missing answer itself
        # when the vertex appears, invalidation reaches the registered parent
        assert service.cache.invalidate_vertex("v", "no-such-vid") == (parent,)


class TestBoundedCache:
    def test_capacity_bound_and_lru_order(self):
        cache = QueryResultCache("n", capacity=2)
        k1, k2, k3 = (
            ("v", "s", "vid1"),
            ("v", "s", "vid2"),
            ("v", "s", "vid3"),
        )
        cache.put(k1, 1, now=0.0)
        cache.put(k2, 2, now=1.0)
        assert cache.get(k1).result == 1  # refresh k1 -> k2 is now LRU
        cache.put(k3, 3, now=2.0)
        assert len(cache) == 2
        assert cache.contains(k1) and cache.contains(k3)
        assert not cache.contains(k2)
        assert cache.evictions == 1

    def test_eviction_displaces_dependents_for_notification(self):
        cache = QueryResultCache("n", capacity=1)
        k1, k2 = ("v", "s", "vid1"), ("v", "s", "vid2")
        parent = ("r", "s", "rid1")
        cache.put(k1, 1, now=0.0, dependents=[("other", parent)])
        displaced = cache.put(k2, 2, now=1.0)
        # k1 was evicted; its reverse pointer is returned for notification
        # and garbage-collected from the cache's bookkeeping.
        assert displaced == (("other", parent),)
        assert cache.dependents_of(k1) == ()
        assert cache.invalidate_vertex("v", "vid1") == ()

    def test_reput_resets_previous_generation_dependents(self):
        """Regression: invalidate -> re-query -> second invalidate must not
        notify dependents from before the first invalidation."""
        cache = QueryResultCache("n")
        key = ("v", "s", "vid1")
        old_parent = ("node-b", ("r", "s", "rid-old"))
        new_parent = ("node-c", ("r", "s", "rid-new"))
        cache.put(key, "gen1", now=0.0)
        cache.add_dependent(key, *old_parent)
        assert cache.invalidate(key) == (old_parent,)
        # a stale registration arrives from the dead generation (e.g. a
        # resolution that was in flight across the invalidation)
        cache.add_dependent(key, *old_parent)
        # re-query caches generation 2 with its own consumers
        cache.put(key, "gen2", now=1.0, dependents=[new_parent])
        assert cache.dependents_of(key) == (new_parent,)
        # the second invalidation notifies only generation 2's consumer
        assert cache.invalidate(key) == (new_parent,)

    def test_overwriting_live_entry_merges_dependents(self):
        """Two racing resolutions (coalescing disabled) both recorded
        consumers of the same value; neither set may be dropped."""
        cache = QueryResultCache("n")
        key = ("v", "s", "vid1")
        p1, p2 = ("b", ("r", "s", "r1")), ("c", ("r", "s", "r2"))
        cache.put(key, "x", now=0.0, dependents=[p1])
        cache.put(key, "x", now=0.1, dependents=[p2])
        assert set(cache.dependents_of(key)) == {p1, p2}

    def test_hit_counters_stay_consistent_across_eviction_and_reput(self):
        """Regression: entry.hits and cache.hits drifted after evict/re-put."""
        cache = QueryResultCache("n", capacity=2)
        k1, k2, k3 = ("v", "s", "a"), ("v", "s", "b"), ("v", "s", "c")
        cache.put(k1, 1, now=0.0)
        cache.put(k2, 2, now=0.0)
        for _ in range(3):
            cache.get(k1)
        cache.get(k2)
        cache.put(k3, 3, now=1.0)  # evicts k1 (k2 was touched last)
        cache.get(k3)
        cache.put(k1, 10, now=2.0)  # re-inserting k1 evicts k2
        cache.get(k1)
        stats = cache.stats()
        assert stats["hits"] == 6
        assert stats["hits"] == stats["live_hits"] + stats["retired_hits"]
        assert stats["live_hits"] == 2  # one hit on k3, one on the new k1
        assert stats["retired_hits"] == 4  # three on old k1, one on k2
        assert stats["evictions"] == 2

    def test_vertex_index_matches_full_scan_semantics(self):
        cache = QueryResultCache("n")
        cache.put(("v", "spec-a", "vid1"), 1, now=0.0)
        cache.put(("v", "spec-b", "vid1"), 2, now=0.0)
        cache.put(("r", "spec-a", "vid1"), 3, now=0.0)  # rule key, same id
        cache.put(("v", "spec-a", "vid2"), 4, now=0.0)
        cache.invalidate_vertex("v", "vid1")
        assert not cache.contains(("v", "spec-a", "vid1"))
        assert not cache.contains(("v", "spec-b", "vid1"))
        assert cache.contains(("r", "spec-a", "vid1"))
        assert cache.contains(("v", "spec-a", "vid2"))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryResultCache("n", capacity=0)

    def test_network_capacity_knob_bounds_every_node(self):
        network = _reference_network(ring_topology(6, seed=1), query_cache_capacity=3)
        spec = polynomial_query(name="tiny-cache", use_cache=True)
        for _, row in network.tuples("bestPathCost")[:8]:
            network.query_provenance(Fact("bestPathCost", row), spec)
        assert all(
            len(node.query_service.cache) <= 3 for node in network.nodes.values()
        )
        stats = network.cache_stats()
        assert stats["evictions"] > 0
        assert stats["hits"] == stats["live_hits"] + stats["retired_hits"]
        # eviction is not allowed to leave stale answers behind
        for _, row in network.tuples("bestPathCost")[:8]:
            fact = Fact("bestPathCost", row)
            cached = network.query_provenance(fact, spec)
            fresh = network.query_provenance(
                fact, polynomial_query(name=f"fresh-{row[1]}", use_cache=False)
            )
            assert repr(cached.result) == repr(fresh.result)


class TestBatching:
    @staticmethod
    def _network_with_sink(kind: str = "tst"):
        network = _reference_network(ring_topology(4, seed=0))
        received = []
        network.network.broadcast_handler(
            kind, lambda host: (lambda message: received.append(message.payload))
        )
        return network, received

    def test_outbox_batches_same_destination_within_turn(self):
        network, received = self._network_with_sink()
        host = network.node(network.addresses()[0]).host
        destination = network.addresses()[1]
        network.stats.reset()
        host.begin_turn()
        host.enqueue(destination, "tst", {"type": "x", "n": 1})
        host.enqueue(destination, "tst", {"type": "x", "n": 2})
        host.end_turn()
        assert network.stats.total_messages(["tst"]) == 1
        assert host.batches_sent == 1 and host.messages_batched == 2
        network.simulator.run_until_idle()
        # the receiving host unpacks the envelope in enqueue order
        assert received == [{"type": "x", "n": 1}, {"type": "x", "n": 2}]

    def test_singleton_flush_uses_plain_wire_format(self):
        network, received = self._network_with_sink()
        addresses = network.addresses()
        host = network.node(addresses[0]).host
        payload = {"type": "invalidate", "key": ["v", "s", "x"]}
        network.stats.reset()
        host.begin_turn()
        host.enqueue(addresses[1], "tst", dict(payload))
        host.end_turn()
        [record] = network.stats.records(["tst"])
        assert record.size == HEADER_OVERHEAD + len("tst") + payload_size(payload)
        assert host.batches_sent == 0
        network.simulator.run_until_idle()
        assert received == [payload]

    def test_batch_wire_size_saves_headers(self):
        payloads = [{"type": "x", "n": index} for index in range(5)]
        single = sum(
            HEADER_OVERHEAD + len("prov") + payload_size(p) for p in payloads
        )
        batched = batch_size("prov", payloads)
        assert batched < single
        assert single - batched == 4 * (HEADER_OVERHEAD + len("prov")) - 2

    def test_enqueue_outside_turn_sends_immediately(self):
        network, received = self._network_with_sink()
        addresses = network.addresses()
        host = network.node(addresses[0]).host
        network.stats.reset()
        host.enqueue(addresses[1], "tst", {"type": "x"})
        assert network.stats.total_messages(["tst"]) == 1
        network.simulator.run_until_idle()
        assert received == [{"type": "x"}]


class TestSimulatorChurn:
    def test_pending_events_is_live_count(self):
        simulator = Simulator()
        events = [simulator.schedule(1.0, lambda: None) for _ in range(10)]
        assert simulator.pending_events == 10
        for event in events[:4]:
            event.cancel()
        assert simulator.pending_events == 6
        events[0].cancel()  # double-cancel is a no-op
        assert simulator.pending_events == 6

    def test_queue_stops_growing_under_schedule_cancel_churn(self):
        """Regression: tombstones used to accumulate until pop time."""
        simulator = Simulator()
        keeper = simulator.schedule(1000.0, lambda: None)
        peak = 0
        for _ in range(200):
            burst = [simulator.schedule(999.0, lambda: None) for _ in range(50)]
            for event in burst:
                event.cancel()
            peak = max(peak, simulator.queue_length)
        # the physical heap stays bounded by the compaction threshold, far
        # below the 10_000 tombstones this loop produced
        assert peak < 300
        assert simulator.compactions > 0
        assert simulator.pending_events == 1
        assert simulator.run_until_idle() == 1
        assert not keeper.cancelled

    def test_cancelled_events_do_not_execute_after_compaction(self):
        simulator = Simulator()
        fired = []
        keep = [simulator.schedule(2.0, lambda i=i: fired.append(i)) for i in range(5)]
        victims = [simulator.schedule(1.0, lambda: fired.append("bad")) for _ in range(100)]
        for event in victims:
            event.cancel()
        simulator._maybe_compact()
        simulator.run_until_idle()
        assert fired == [0, 1, 2, 3, 4]
        assert all(not event.cancelled for event in keep)
