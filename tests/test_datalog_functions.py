"""Unit tests for the builtin function registry (repro.datalog.functions)."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.datalog.errors import EvaluationError, UnknownFunctionError
from repro.datalog.functions import DIGEST_LENGTH, FunctionRegistry, default_registry, sha1_hex

REGISTRY = default_registry()


class TestSha1:
    def test_digest_is_truncated_sha1(self):
        full = hashlib.sha1(b"hello").hexdigest()
        assert sha1_hex("hello") == full[:DIGEST_LENGTH]

    def test_digest_length_matches_paper_pointer_size(self):
        assert len(sha1_hex("anything")) == 20

    def test_f_sha1_concatenates_arguments(self):
        assert REGISTRY.call("f_sha1", ["link", "a", "c", 5]) == sha1_hex("linkac5")

    def test_f_sha1_renders_floats_like_ints(self):
        assert REGISTRY.call("f_sha1", ["c", 5.0]) == sha1_hex("c5")

    def test_f_sha1_flattens_lists(self):
        assert REGISTRY.call("f_sha1", ["r", ["x", "y"]]) == sha1_hex("rxy")

    def test_f_sha1_none_renders_empty(self):
        assert REGISTRY.call("f_sha1", ["a", None, "b"]) == sha1_hex("ab")

    @given(st.text(max_size=50), st.text(max_size=50))
    def test_distinct_inputs_rarely_collide(self, a, b):
        if a != b:
            assert sha1_hex(a) != sha1_hex(b) or a == b


class TestListFunctions:
    def test_f_concat_flattens(self):
        assert REGISTRY.call("f_concat", [["a"], "b", ["c", "d"]]) == ["a", "b", "c", "d"]

    def test_f_append_builds_list(self):
        assert REGISTRY.call("f_append", ["x", "y"]) == ["x", "y"]

    def test_f_empty(self):
        assert REGISTRY.call("f_empty", []) == []

    def test_f_empty_rejects_arguments(self):
        with pytest.raises(EvaluationError):
            REGISTRY.call("f_empty", [1])

    def test_f_size(self):
        assert REGISTRY.call("f_size", [[1, 2, 3]]) == 3
        assert REGISTRY.call("f_size", ["abcd"]) == 4
        assert REGISTRY.call("f_size", [None]) == 0

    def test_f_size_requires_one_argument(self):
        with pytest.raises(EvaluationError):
            REGISTRY.call("f_size", [[1], [2]])

    def test_f_item_default_and_indexed(self):
        assert REGISTRY.call("f_item", [["a", "b", "c"]]) == "a"
        assert REGISTRY.call("f_item", [["a", "b", "c"], 1]) == "b"
        assert REGISTRY.call("f_item", [["a", "b", "c"], -1]) == "c"

    def test_f_item_out_of_range(self):
        with pytest.raises(EvaluationError):
            REGISTRY.call("f_item", [["a"], 5])

    def test_f_member(self):
        assert REGISTRY.call("f_member", [["a", "b"], "a"]) is True
        assert REGISTRY.call("f_member", [["a", "b"], "z"]) is False
        assert REGISTRY.call("f_member", [None, "z"]) is False

    def test_f_first_and_last(self):
        assert REGISTRY.call("f_first", [["a", "b"]]) == "a"
        assert REGISTRY.call("f_last", [["a", "b"]]) == "b"

    def test_works_with_tuples_from_table_storage(self):
        assert REGISTRY.call("f_size", [("a", "b")]) == 2
        assert REGISTRY.call("f_member", [("a", "b"), "b"]) is True


class TestScalarHelpers:
    def test_f_min_max(self):
        assert REGISTRY.call("f_min", [3, 1, 2]) == 1
        assert REGISTRY.call("f_max", [3, 1, 2]) == 3

    def test_f_min_requires_arguments(self):
        with pytest.raises(EvaluationError):
            REGISTRY.call("f_min", [])

    def test_f_tostr(self):
        assert REGISTRY.call("f_tostr", [5]) == "5"
        assert REGISTRY.call("f_tostr", [5.0]) == "5"


class TestRegistry:
    def test_unknown_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            REGISTRY.call("f_missing", [])

    def test_register_and_call_custom_function(self):
        registry = default_registry()
        registry.register("f_double", lambda args: args[0] * 2)
        assert registry.call("f_double", [21]) == 42
        assert "f_double" in registry

    def test_unregister(self):
        registry = default_registry()
        registry.register("f_tmp", lambda args: 1)
        registry.unregister("f_tmp")
        assert "f_tmp" not in registry

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.register("f_only_in_clone", lambda args: 1)
        assert "f_only_in_clone" not in registry
        assert "f_only_in_clone" in clone

    def test_names_sorted(self):
        names = list(REGISTRY.names())
        assert names == sorted(names)
        assert "f_sha1" in names

    def test_empty_registry(self):
        registry = FunctionRegistry()
        with pytest.raises(UnknownFunctionError):
            registry.call("f_sha1", ["x"])
