"""Sharded multi-process engine: equivalence, determinism, and substrate.

The headline guarantee under test: a simulation partitioned across N
worker processes (:class:`repro.net.sharding.ShardedExspanNetwork`)
produces **bit-identical** state to the single-process engine — fixpoints,
provenance tables and VIDs, value-based annotations, per-host counters and
network-wide traffic counters — for any shard count and any
``PYTHONHASHSEED``, including under scripted churn and concurrent
provenance queries.

Also covered here: the latency-aware partitioner and its lookahead
accounting, the windowed simulator API (exclusive horizons, the safe-time
barrier tripwire, monotonic clocks under adversarial latencies via
hypothesis), the tunable heap-compaction knobs and their stats
reconciliation, and the cross-shard counter merge helpers.
"""

from __future__ import annotations

import os
import subprocess
import sys
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode
from repro.core.customizations import derivation_count_query, polynomial_query
from repro.datalog.ast import Fact
from repro.net import SimulationError, Simulator
from repro.net.sharding import (
    ScriptOp,
    ShardedExspanNetwork,
    apply_script_serial,
    collect_digest,
    collect_summary,
)
from repro.net.stats import (
    MessageRecord,
    merge_counter_dicts,
    merge_traffic_records,
)
from repro.net.topology import (
    cluster_topology,
    partition_cut_edges,
    partition_lookahead,
    partition_topology,
    ring_topology,
    transit_stub_topology,
)
from repro.protocols import (
    mincost_program,
    packet_event,
    packetforward_program,
    pathvector_program,
)

# ---------------------------------------------------------------------- #
# shared builders
# ---------------------------------------------------------------------- #
PROGRAMS = {
    "mincost": mincost_program,
    "pathvector": pathvector_program,
    "packetforward": lambda: pathvector_program().extended(
        packetforward_program(), "pv+fwd"
    ),
}

MODES = {"ref": ProvenanceMode.REFERENCE, "value": ProvenanceMode.VALUE}


def _topology():
    return cluster_topology(4, 6, seed=3)


def _packet_script(topology):
    """Deterministic cross-cluster packet injections for PACKETFORWARD."""
    nodes = topology.nodes
    return [
        (
            0.4,
            [
                ScriptOp("insert", fact=packet_event(nodes[1], nodes[1], nodes[-2], "pay-a")),
                ScriptOp("insert", fact=packet_event(nodes[-1], nodes[-1], nodes[2], "pay-b")),
            ],
        ),
        (
            0.6,
            [ScriptOp("insert", fact=packet_event(nodes[7], nodes[7], nodes[20], "pay-c"))],
        ),
    ]


CHURN_SCRIPT = [
    (
        0.5,
        [
            ScriptOp("remove_link", a="c0_1", b="c0_2"),
            ScriptOp("add_link", a="c1_3", b="c2_4", cost=2),
        ],
    ),
    (
        0.8,
        [
            ScriptOp("add_link", a="c0_1", b="c0_2", cost=1),
            ScriptOp("remove_link", a="c1_3", b="c2_4"),
        ],
    ),
]


def _serial_state(program_key, mode_key, script=None, specs=(), value_policy="bdd"):
    net = ExspanNetwork(
        _topology(),
        PROGRAMS[program_key](),
        config=ExspanConfig(mode=MODES[mode_key], seed=0, value_policy=value_policy),
    )
    for spec in specs:
        net.register_spec(spec)
    net.seed_links()
    net.run_to_fixpoint()
    outcomes = apply_script_serial(net, script) if script else {}
    return collect_summary(net), collect_digest(net), outcomes


def _sharded_state(
    program_key, mode_key, shards, script=None, specs=(), value_policy="bdd"
):
    with ShardedExspanNetwork(
        _topology(),
        PROGRAMS[program_key](),
        mode=MODES[mode_key],
        shards=shards,
        seed=0,
        value_policy=value_policy,
        query_specs=specs,
    ) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        if script:
            sharded.run_script(script)
        outcomes = sharded.outcomes() if script else {}
        return sharded.summary(), sharded.digest(), outcomes


# ---------------------------------------------------------------------- #
# the equivalence sweep (fixpoints, REF + VALUE annotations)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("program_key", ["mincost", "pathvector", "packetforward"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_fixpoint_equivalence_ref(program_key, shards):
    serial = _serial_state(program_key, "ref")
    sharded = _sharded_state(program_key, "ref", shards)
    assert sharded == serial


@pytest.mark.parametrize("program_key", ["mincost", "pathvector"])
@pytest.mark.parametrize("shards", [2, 4])
def test_fixpoint_equivalence_value_bdd(program_key, shards):
    """Value-mode BDD annotations cross shard boundaries bit-identically."""
    serial = _serial_state(program_key, "value")
    sharded = _sharded_state(program_key, "value", shards)
    assert sharded == serial


def test_fixpoint_equivalence_value_polynomial():
    serial = _serial_state("mincost", "value", value_policy="polynomial")
    sharded = _sharded_state("mincost", "value", 3, value_policy="polynomial")
    assert sharded == serial


# ---------------------------------------------------------------------- #
# churn and data-plane scripts
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("mode_key,shards", [("ref", 2), ("ref", 4), ("value", 2)])
def test_churn_equivalence(mode_key, shards):
    """Scripted link add/remove cascades replay identically across shards."""
    serial = _serial_state("mincost", mode_key, script=CHURN_SCRIPT)
    sharded = _sharded_state("mincost", mode_key, shards, script=CHURN_SCRIPT)
    assert sharded == serial


@pytest.mark.parametrize("shards", [2, 4])
def test_packetforward_equivalence(shards):
    """PACKETFORWARD data-plane events forward identically across shards."""
    script = _packet_script(_topology())
    serial = _serial_state("packetforward", "ref", script=script)
    sharded = _sharded_state("packetforward", "ref", shards, script=script)
    assert sharded == serial


# ---------------------------------------------------------------------- #
# provenance queries across shard boundaries
# ---------------------------------------------------------------------- #
def _query_specs():
    return (
        polynomial_query(name="shpoly"),
        derivation_count_query(name="shcnt"),
    )


def _query_script(topology):
    nodes = topology.nodes
    best = Fact("bestPathCost", (nodes[2], nodes[-3], 5))
    other = Fact("bestPathCost", (nodes[-1], nodes[1], 4))
    return [
        (
            0.6,
            [
                ScriptOp("query", fact=best, spec="shpoly", issuer=nodes[-1], query_id="qa"),
                ScriptOp("query", fact=other, spec="shcnt", query_id="qb"),
                ScriptOp("query", fact=best, spec="shcnt", issuer=nodes[0], query_id="qc"),
            ],
        ),
    ]


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_query_equivalence(shards):
    """Distributed provenance queries resolve identically across shards."""
    specs = _query_specs()
    script = _query_script(_topology())
    serial_summary, serial_digest, serial_outcomes = _serial_state(
        "mincost", "ref", script=script, specs=specs
    )
    summary, digest, outcomes = _sharded_state(
        "mincost", "ref", shards, script=script, specs=specs
    )
    assert outcomes and set(outcomes) == {"qa", "qb", "qc"}
    assert outcomes == serial_outcomes
    assert summary == serial_summary
    assert digest == serial_digest


def test_apply_ops_after_fixpoint_reopens_the_window():
    """Ops at a post-quiescence barrier may schedule from that instant.

    Regression: the final quiesce window overshoots the last event time,
    and ops applied at the (earlier) global now send messages landing
    before the overshot safe time — the worker must re-open its window at
    the barrier instant instead of tripping the safe-time assertion.
    """
    serial = ExspanNetwork(_topology(), mincost_program(), config=ExspanConfig(seed=0))
    serial.seed_links()
    serial.run_to_fixpoint()
    serial.insert_fact(Fact("link", ("c0_1", "c0_3", 9)))
    serial.simulator.run_until_idle()
    with ShardedExspanNetwork(_topology(), mincost_program(), shards=2, seed=0) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        sharded.apply_ops([ScriptOp("insert", fact=Fact("link", ("c0_1", "c0_3", 9)))])
        assert sharded.summary() == collect_summary(serial)
        assert sharded.digest() == collect_digest(serial)


def test_auto_query_ids_do_not_collide():
    """Concurrent unnamed queries each keep their own outcome entry."""
    specs = _query_specs()
    nodes = _topology().nodes
    script = [
        (
            0.5,
            [
                ScriptOp("query", fact=Fact("bestPathCost", (nodes[1], nodes[4], 3)), spec="shcnt"),
                ScriptOp("query", fact=Fact("bestPathCost", (nodes[9], nodes[2], 4)), spec="shcnt"),
                ScriptOp("query", fact=Fact("bestPathCost", (nodes[1], nodes[7], 2)), spec="shcnt"),
            ],
        ),
    ]
    serial = ExspanNetwork(_topology(), mincost_program(), config=ExspanConfig(seed=0))
    for spec in specs:
        serial.register_spec(spec)
    serial.seed_links()
    serial.run_to_fixpoint()
    serial_outcomes = apply_script_serial(serial, script)
    assert len(serial_outcomes) == 3
    with ShardedExspanNetwork(
        _topology(), mincost_program(), shards=4, seed=0, query_specs=specs
    ) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        sharded.run_script(script)
        assert sharded.outcomes() == serial_outcomes


def test_query_provenance_convenience():
    fact = Fact("bestPathCost", ("c0_1", "c0_2", 1))
    with ShardedExspanNetwork(
        _topology(), mincost_program(), shards=2, seed=0, query_specs=_query_specs()
    ) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        outcome = sharded.query_provenance(fact, "shcnt")
    assert outcome["vid"]
    assert outcome["completed_at"] >= outcome["issued_at"]


# ---------------------------------------------------------------------- #
# PYTHONHASHSEED invariance (subprocess digest, mirrors plan-equivalence)
# ---------------------------------------------------------------------- #
def test_sharded_digest_hashseed_invariant():
    script = (
        "import hashlib, json\n"
        "from repro.net.sharding import ShardedExspanNetwork\n"
        "from repro.net.topology import cluster_topology\n"
        "from repro.protocols import mincost_program\n"
        "from repro.core.modes import ProvenanceMode\n"
        "with ShardedExspanNetwork(cluster_topology(3, 5, seed=1),\n"
        "        mincost_program(), mode=ProvenanceMode.REFERENCE,\n"
        "        shards=2, seed=0) as sharded:\n"
        "    sharded.seed_links()\n"
        "    sharded.run_to_fixpoint()\n"
        "    payload = json.dumps([sharded.summary(), sharded.digest()],\n"
        "                         sort_keys=True, default=repr)\n"
        "print(hashlib.sha256(payload.encode()).hexdigest())\n"
    )
    digests = set()
    for seed in ("0", "1", "31337"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.split()
        assert len(output) == 1
        digests.update(output)
    assert len(digests) == 1


# ---------------------------------------------------------------------- #
# partitioner and lookahead
# ---------------------------------------------------------------------- #
def test_partition_balance_and_cover():
    topology = cluster_topology(8, 32, seed=0)
    for shards in (2, 4, 8):
        assignment = partition_topology(topology, shards)
        assert set(assignment) == set(topology.nodes)
        sizes = Counter(assignment.values())
        assert len(sizes) == shards
        assert max(sizes.values()) - min(sizes.values()) <= 0.5 * (256 / shards)


def test_partition_cuts_slow_links_on_clustered_graphs():
    """The latency-aware partitioner must cut inter-cluster links only."""
    topology = cluster_topology(8, 32, seed=0)
    assignment = partition_topology(topology, 4)
    cut = partition_cut_edges(topology, assignment)
    assert cut and all(spec.latency == pytest.approx(0.05) for _, _, spec in cut)
    assert partition_lookahead(topology, assignment) == pytest.approx(0.05)


def test_partition_transit_stub():
    topology = transit_stub_topology(domains=2, seed=0)
    assignment = partition_topology(topology, 2)
    assert partition_lookahead(topology, assignment) == pytest.approx(0.05)


def test_partition_edge_cases():
    topology = ring_topology(6, seed=0)
    assert set(partition_topology(topology, 1).values()) == {0}
    # more shards than nodes: clamped, still a full cover
    assignment = partition_topology(topology, 16)
    assert set(assignment) == set(topology.nodes)


def test_partition_deterministic():
    topology = cluster_topology(5, 9, seed=2)
    assert partition_topology(topology, 3) == partition_topology(topology, 3)


def test_cluster_topology_shape():
    topology = cluster_topology(8, 32, seed=0)
    assert topology.node_count() == 256
    assert topology.is_connected()


# ---------------------------------------------------------------------- #
# windowed simulator API and the float-drift guards
# ---------------------------------------------------------------------- #
def test_run_window_exclusive_horizon():
    simulator = Simulator()
    fired = []
    simulator.schedule_at(1.0, lambda: fired.append(1.0))
    simulator.schedule_at(2.0, lambda: fired.append(2.0))
    assert simulator.run_window(2.0) == 1
    assert fired == [1.0]  # the event exactly at the horizon waits
    assert simulator.safe_time == 2.0
    assert simulator.now == 1.0  # clock rests on the last executed event
    assert simulator.run_window(2.5) == 1
    assert fired == [1.0, 2.0]


def test_safe_time_rejects_travel_into_executed_windows():
    simulator = Simulator()
    simulator.run_window(5.0)
    with pytest.raises(SimulationError):
        simulator.schedule_at(4.999, lambda: None)
    simulator.schedule_at(5.0, lambda: None)  # exactly at the barrier is fine
    with pytest.raises(SimulationError):
        simulator.run_window(4.0)  # horizons are monotone


def test_single_authoritative_schedule_path():
    """Relative delays funnel through schedule_at (single time-arithmetic site)."""
    simulator = Simulator()
    simulator.advance_to(1.1)
    event = simulator.schedule(0.4, lambda: None)
    assert event.time == 1.1 + 0.4
    with pytest.raises(SimulationError):
        simulator.schedule(-0.1, lambda: None)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
            st.floats(min_value=1e-9, max_value=0.11, allow_nan=False),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    ),
    st.floats(min_value=1e-6, max_value=0.07, allow_nan=False),
)
def test_windowed_execution_monotonic_under_adversarial_latencies(entries, window):
    """Window stepping never executes out of order or moves time backwards.

    Adversarial schedule: events at arbitrary (float-noisy) times, some
    cancelled, executed through irregular windows; every executed event
    must respect the global (time, key, sequence) order, the clock must be
    monotone across window boundaries, and nothing may land before the
    safe time.
    """
    simulator = Simulator(compact_min_cancelled=2, compact_ratio=0.5)
    executed = []
    live = 0
    for base, delta, cancel in entries:
        event = simulator.schedule_at(
            base + delta, lambda t=base + delta: executed.append(t)
        )
        if cancel:
            event.cancel()
        else:
            live += 1
    horizon = 0.0
    rounds = 0
    while simulator.pending_events and rounds < 1000:
        previous_now = simulator.now
        horizon = max(horizon + window, simulator.next_event_time() + window / 2)
        simulator.run_window(horizon)
        assert simulator.now >= previous_now
        assert simulator.safe_time == horizon
        rounds += 1
    assert len(executed) == live
    assert executed == sorted(executed)
    # compaction accounting reconciles at every point of observation
    assert simulator.queue_length == simulator.pending_events + simulator._cancelled_in_queue


def test_run_window_truncated_by_max_events_keeps_horizon_unsafe():
    """A max_events-truncated window must not mark the horizon safe."""
    simulator = Simulator()
    simulator.schedule_at(1.0, lambda: None)
    simulator.schedule_at(1.1, lambda: simulator.schedule(0.01, lambda: None))
    assert simulator.run_window(2.0, max_events=1) == 1
    assert simulator.safe_time <= 1.0  # pre-horizon events remain live
    simulator.run_until_idle()  # the 1.1 event's +0.01 follow-up is legal
    assert simulator.pending_events == 0


def test_failed_send_does_not_corrupt_traffic_stats():
    """Destination validation happens before billing (serial and sharded)."""
    from repro.net import Network, UnknownNodeError

    topology = ring_topology(4, seed=0)
    network = Network(topology)
    with pytest.raises(UnknownNodeError):
        network.send("n0", "ghost", "delta", payload="x")
    assert network.stats.total_messages() == 0
    assert network.stats.total_bytes() == 0
    sharded = Network(
        topology, local_nodes=["n0", "n1"], shard_map={node: 0 if node in ("n0", "n1") else 1 for node in topology.nodes}
    )
    with pytest.raises(UnknownNodeError):
        sharded.send("n0", "ghost", "delta", payload="x")
    assert sharded.stats.total_messages() == 0
    assert not sharded.outbound


def test_compaction_knobs_and_reconciliation():
    """Tunable compaction keeps queue_length == live + cancelled exact."""
    simulator = Simulator(compact_min_cancelled=8, compact_ratio=0.5)
    events = [simulator.schedule(1.0 + index * 1e-6, lambda: None) for index in range(100)]
    for event in events[:80]:
        event.cancel()
        assert (
            simulator.queue_length
            == simulator.pending_events + simulator._cancelled_in_queue
        )
    assert simulator.compactions >= 1
    assert simulator.pending_events == 20
    simulator.run_until_idle()
    assert simulator.queue_length == 0


def test_compaction_knob_validation():
    with pytest.raises(SimulationError):
        Simulator(compact_min_cancelled=-1)
    with pytest.raises(SimulationError):
        Simulator(compact_ratio=0.0)


def test_exspan_network_threads_compaction_knobs():
    net = ExspanNetwork(
        ring_topology(4, seed=0),
        mincost_program(),
        config=ExspanConfig(compact_min_cancelled=7, compact_ratio=2.5),
    )
    assert net.simulator.compact_min_cancelled == 7
    assert net.simulator.compact_ratio == 2.5


# ---------------------------------------------------------------------- #
# cross-shard counter merge helpers
# ---------------------------------------------------------------------- #
def test_merge_counter_dicts():
    merged = merge_counter_dicts([{"b": 2, "a": 1}, {"a": 3, "c": 1.5}])
    assert merged == {"a": 4, "b": 2, "c": 1.5}
    assert list(merged) == ["a", "b", "c"]  # sorted, hash-seed independent


def test_merge_traffic_records_deterministic_order():
    shard_a = [
        MessageRecord(0.1, "n1", "n2", 10, "delta"),
        MessageRecord(0.2, "n1", "n3", 20, "delta"),
    ]
    shard_b = [
        MessageRecord(0.1, "n0", "n1", 5, "prov"),
        MessageRecord(0.1, "n2", "n1", 7, "delta"),
    ]
    rank = {"n0": 0, "n1": 1, "n2": 2, "n3": 3}
    merged = merge_traffic_records([shard_a, shard_b], rank)
    assert [record.source for record in merged] == ["n0", "n1", "n2", "n1"]
    # drain order must not matter
    assert merge_traffic_records([shard_b, shard_a], rank) == merged


def test_sharded_records_match_serial_aggregates():
    serial = ExspanNetwork(_topology(), mincost_program(), config=ExspanConfig(seed=0))
    serial.seed_links()
    serial.run_to_fixpoint()
    with ShardedExspanNetwork(_topology(), mincost_program(), shards=2, seed=0) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        merged = sharded.records()
    assert len(merged) == len(serial.stats.records())
    assert sum(record.size for record in merged) == serial.stats.total_bytes()
    assert sorted(record.time for record in merged) == sorted(
        record.time for record in serial.stats.records()
    )


def test_sharded_traffic_stats_match_serial_views():
    """The merged TrafficStats answers every aggregate like the serial one."""
    serial = ExspanNetwork(_topology(), mincost_program(), config=ExspanConfig(seed=0))
    serial.seed_links()
    serial.run_to_fixpoint()
    with ShardedExspanNetwork(_topology(), mincost_program(), shards=3, seed=0) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        merged = sharded.traffic_stats()
    assert merged.total_bytes() == serial.stats.total_bytes()
    assert merged.total_messages() == serial.stats.total_messages()
    assert merged.bytes_by_sender() == serial.stats.bytes_by_sender()
    assert merged.bandwidth_timeseries(0.05, 24) == serial.stats.bandwidth_timeseries(
        0.05, 24
    )


# ---------------------------------------------------------------------- #
# disconnected topologies (no cut edges, default-latency messaging)
# ---------------------------------------------------------------------- #
def _island_topology():
    """Two disconnected rings — cross-island messages use default latency."""
    from repro.net.topology import LinkSpec, Topology

    topology = Topology(name="islands")
    spec = LinkSpec(latency=0.002)
    for island in range(2):
        members = [f"i{island}_{index}" for index in range(5)]
        for node in members:
            topology.add_node(node)
        for index in range(len(members)):
            topology.add_link(members[index], members[(index + 1) % len(members)], spec)
    return topology


def test_disconnected_islands_cross_shard_queries():
    """Shards with *no* cut edges can still exchange (no-route) messages.

    The lookahead clamp must fall back to the network's default latency;
    without it a free-running shard would receive an envelope in its past.
    """
    partition = {f"i{island}_{index}": island for island in range(2) for index in range(5)}
    specs = (derivation_count_query(name="shcnt"),)
    script = [
        (
            0.3,
            [
                # each island queries a fact owned by the *other* island
                ScriptOp(
                    "query",
                    fact=Fact("bestPathCost", ("i1_1", "i1_3", 2)),
                    spec="shcnt",
                    issuer="i0_0",
                    query_id="qx",
                ),
                ScriptOp(
                    "query",
                    fact=Fact("bestPathCost", ("i0_2", "i0_4", 2)),
                    spec="shcnt",
                    issuer="i1_4",
                    query_id="qy",
                ),
            ],
        ),
    ]
    serial = ExspanNetwork(
        _island_topology(), mincost_program(), config=ExspanConfig(seed=0)
    )
    for spec in specs:
        serial.register_spec(spec)
    serial.seed_links()
    serial.run_to_fixpoint()
    serial_outcomes = apply_script_serial(serial, script)
    with ShardedExspanNetwork(
        _island_topology(),
        mincost_program(),
        shards=2,
        seed=0,
        partition=partition,
        query_specs=specs,
    ) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        sharded.run_script(script)
        outcomes = sharded.outcomes()
        summary = sharded.summary()
        digest = sharded.digest()
    assert set(outcomes) == {"qx", "qy"}
    assert outcomes == serial_outcomes
    assert summary == collect_summary(serial)
    assert digest == collect_digest(serial)


# ---------------------------------------------------------------------- #
# parallelism accounting
# ---------------------------------------------------------------------- #
def test_parallelism_report_counts_every_event():
    serial = ExspanNetwork(_topology(), mincost_program(), config=ExspanConfig(seed=0))
    serial.seed_links()
    serial.run_to_fixpoint()
    with ShardedExspanNetwork(_topology(), mincost_program(), shards=4, seed=0) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        report = sharded.parallelism_report()
    assert report["events_total"] == serial.simulator.events_executed
    assert 0 < report["events_critical_path"] <= report["events_total"]
    assert report["attainable_speedup"] >= 1.0
    assert report["windows"] == len(sharded.window_loads)
