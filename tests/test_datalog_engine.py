"""Unit tests for the per-node NDlog evaluation engine."""

from __future__ import annotations

import pytest

from repro.datalog import (
    DELETE,
    INSERT,
    AnnotationPolicy,
    Delta,
    Fact,
    NDlogEngine,
    parse_program,
)
from repro.datalog.engine import REFRESH
from repro.datalog.errors import EvaluationError


def single_node_engine(source: str, address: str = "n") -> NDlogEngine:
    """An engine whose remote sends loop back locally (single-node tests)."""
    engine = NDlogEngine(address, parse_program(source))
    engine.set_send(lambda destination, delta: engine.enqueue(delta))
    return engine


class TestLocalDerivation:
    def test_single_rule_projection(self):
        engine = single_node_engine("r1 reach(@S,D) :- link(@S,D,C).")
        engine.insert(Fact("link", ("n", "m", 1)))
        engine.run()
        assert engine.has_fact("reach", ("n", "m"))

    def test_join_two_relations(self):
        engine = single_node_engine(
            "r1 twoHop(@S,D) :- link(@S,Z,C1), hop(@S,Z,D)."
        )
        engine.insert(Fact("link", ("n", "z", 1)))
        engine.insert(Fact("hop", ("n", "z", "d")))
        engine.run()
        assert engine.has_fact("twoHop", ("n", "d"))

    def test_join_order_independent(self):
        engine = single_node_engine(
            "r1 twoHop(@S,D) :- link(@S,Z,C1), hop(@S,Z,D)."
        )
        engine.insert(Fact("hop", ("n", "z", "d")))
        engine.insert(Fact("link", ("n", "z", 1)))
        engine.run()
        assert engine.has_fact("twoHop", ("n", "d"))

    def test_condition_filters(self):
        engine = single_node_engine("r1 cheap(@S,D) :- link(@S,D,C), C<3.")
        engine.insert(Fact("link", ("n", "a", 5)))
        engine.insert(Fact("link", ("n", "b", 1)))
        engine.run()
        assert not engine.has_fact("cheap", ("n", "a"))
        assert engine.has_fact("cheap", ("n", "b"))

    def test_assignment_computes_head_value(self):
        engine = single_node_engine(
            "r1 total(@S,T) :- link(@S,D,C), other(@S,D,C2), T=C+C2."
        )
        engine.insert(Fact("link", ("n", "d", 3)))
        engine.insert(Fact("other", ("n", "d", 4)))
        engine.run()
        assert engine.has_fact("total", ("n", 7))

    def test_expression_in_head(self):
        engine = single_node_engine("r1 double(@S,C*2) :- link(@S,D,C).")
        engine.insert(Fact("link", ("n", "d", 3)))
        engine.run()
        assert engine.has_fact("double", ("n", 6))

    def test_constant_in_body_atom_filters(self):
        engine = single_node_engine('r1 toA(@S) :- link(@S,"a",C).')
        engine.insert(Fact("link", ("n", "a", 1)))
        engine.insert(Fact("link", ("n", "b", 1)))
        engine.run()
        assert len(engine.table_rows("toA")) == 1

    def test_wildcard_argument_matches_anything(self):
        engine = single_node_engine("r1 hasLink(@S) :- link(@S,_,_).")
        engine.insert(Fact("link", ("n", "a", 1)))
        engine.run()
        assert engine.has_fact("hasLink", ("n",))

    def test_repeated_variable_in_atom_requires_equality(self):
        engine = single_node_engine("r1 selfLoop(@S) :- link(@S,S,C).")
        engine.insert(Fact("link", ("n", "m", 1)))
        engine.insert(Fact("link", ("n", "n", 1)))
        engine.run()
        assert engine.table_rows("selfLoop") == [("n",)]

    def test_unknown_function_in_rule_raises(self):
        engine = single_node_engine("r1 out(@S,V) :- link(@S,D,C), V=f_bogus(C).")
        engine.insert(Fact("link", ("n", "d", 1)))
        with pytest.raises(EvaluationError):
            engine.run()


class TestEvents:
    def test_event_triggers_rule_but_is_not_materialized(self):
        engine = single_node_engine(
            "r1 seen(@N,P) :- ePing(@N,P)."
        )
        engine.insert(Fact("ePing", ("n", "hello")))
        engine.run()
        assert engine.has_fact("seen", ("n", "hello"))
        assert len(engine.catalog.table("ePing")) == 0

    def test_event_chain(self):
        engine = single_node_engine(
            """
            r1 eSecond(@N,P) :- eFirst(@N,P).
            r2 result(@N,P) :- eSecond(@N,P).
            """
        )
        engine.insert(Fact("eFirst", ("n", 1)))
        engine.run()
        assert engine.has_fact("result", ("n", 1))

    def test_event_deletion_delta_cascades(self):
        engine = single_node_engine(
            """
            r1 eMid(@N,P) :- base(@N,P).
            r2 derived(@N,P) :- eMid(@N,P).
            """
        )
        engine.insert(Fact("base", ("n", 1)))
        engine.run()
        assert engine.has_fact("derived", ("n", 1))
        engine.delete(Fact("base", ("n", 1)))
        engine.run()
        assert not engine.has_fact("derived", ("n", 1))


class TestDeletionCascades:
    def test_simple_cascade(self):
        engine = single_node_engine("r1 reach(@S,D) :- link(@S,D,C).")
        engine.insert(Fact("link", ("n", "m", 1)))
        engine.run()
        engine.delete(Fact("link", ("n", "m", 1)))
        engine.run()
        assert not engine.has_fact("reach", ("n", "m"))

    def test_tuple_with_two_derivations_survives_one_deletion(self):
        engine = single_node_engine(
            """
            r1 reach(@S,D) :- red(@S,D).
            r2 reach(@S,D) :- blue(@S,D).
            """
        )
        engine.insert(Fact("red", ("n", "m")))
        engine.insert(Fact("blue", ("n", "m")))
        engine.run()
        engine.delete(Fact("red", ("n", "m")))
        engine.run()
        assert engine.has_fact("reach", ("n", "m"))
        engine.delete(Fact("blue", ("n", "m")))
        engine.run()
        assert not engine.has_fact("reach", ("n", "m"))

    def test_transitive_cascade(self):
        engine = single_node_engine(
            """
            r1 mid(@S,D) :- base(@S,D).
            r2 top(@S,D) :- mid(@S,D).
            """
        )
        engine.insert(Fact("base", ("n", "x")))
        engine.run()
        engine.delete(Fact("base", ("n", "x")))
        engine.run()
        assert not engine.has_fact("mid", ("n", "x"))
        assert not engine.has_fact("top", ("n", "x"))


class TestAggregates:
    MIN_PROGRAM = """
        a1 best(@S,D,min<C>) :- pathCost(@S,D,C).
    """

    def test_min_aggregate_tracks_group_minimum(self):
        engine = single_node_engine(self.MIN_PROGRAM)
        engine.insert(Fact("pathCost", ("n", "d", 5)))
        engine.run()
        assert engine.has_fact("best", ("n", "d", 5))
        engine.insert(Fact("pathCost", ("n", "d", 3)))
        engine.run()
        assert engine.has_fact("best", ("n", "d", 3))
        assert not engine.has_fact("best", ("n", "d", 5))

    def test_min_aggregate_recovers_after_delete(self):
        engine = single_node_engine(self.MIN_PROGRAM)
        engine.insert(Fact("pathCost", ("n", "d", 5)))
        engine.insert(Fact("pathCost", ("n", "d", 3)))
        engine.run()
        engine.delete(Fact("pathCost", ("n", "d", 3)))
        engine.run()
        assert engine.has_fact("best", ("n", "d", 5))

    def test_min_aggregate_group_disappears_when_empty(self):
        engine = single_node_engine(self.MIN_PROGRAM)
        engine.insert(Fact("pathCost", ("n", "d", 5)))
        engine.run()
        engine.delete(Fact("pathCost", ("n", "d", 5)))
        engine.run()
        assert engine.table_rows("best") == []

    def test_separate_groups_are_independent(self):
        engine = single_node_engine(self.MIN_PROGRAM)
        engine.insert(Fact("pathCost", ("n", "d", 5)))
        engine.insert(Fact("pathCost", ("n", "e", 2)))
        engine.run()
        assert engine.has_fact("best", ("n", "d", 5))
        assert engine.has_fact("best", ("n", "e", 2))

    def test_count_star_aggregate(self):
        engine = single_node_engine("c1 numChild(@X,V,count<*>) :- prov(@X,V,R).")
        engine.insert(Fact("prov", ("n", "v1", "r1")))
        engine.insert(Fact("prov", ("n", "v1", "r2")))
        engine.run()
        assert engine.has_fact("numChild", ("n", "v1", 2))
        engine.delete(Fact("prov", ("n", "v1", "r2")))
        engine.run()
        assert engine.has_fact("numChild", ("n", "v1", 1))

    def test_agglist_aggregate_collects_pairs(self):
        engine = single_node_engine(
            "l1 pQList(@X,V,agglist<R,L>) :- prov(@X,V,R,L)."
        )
        engine.insert(Fact("prov", ("n", "v1", "r1", "a")))
        engine.insert(Fact("prov", ("n", "v1", "r2", "b")))
        engine.run()
        rows = engine.table_rows("pQList")
        assert len(rows) == 1
        collected = rows[0][2]
        assert sorted(collected) == [("r1", "a"), ("r2", "b")]

    def test_duplicate_contributions_do_not_duplicate_aggregate(self):
        # pathCost derivable twice with the same value: best stays stable.
        engine = single_node_engine(
            """
            d1 pathCost(@S,D,C) :- red(@S,D,C).
            d2 pathCost(@S,D,C) :- blue(@S,D,C).
            a1 best(@S,D,min<C>) :- pathCost(@S,D,C).
            """
        )
        engine.insert(Fact("red", ("n", "d", 4)))
        engine.insert(Fact("blue", ("n", "d", 4)))
        engine.run()
        assert engine.table_rows("best") == [("n", "d", 4)]
        engine.delete(Fact("red", ("n", "d", 4)))
        engine.run()
        assert engine.table_rows("best") == [("n", "d", 4)]


class TestRemoteEmission:
    def test_remote_head_invokes_send_callback(self):
        sent = []
        engine = NDlogEngine(
            "a", parse_program("r1 reach(@D,S) :- link(@S,D,C)."),
            send=lambda destination, delta: sent.append((destination, delta)),
        )
        engine.insert(Fact("link", ("a", "b", 1)))
        engine.run()
        assert len(sent) == 1
        destination, delta = sent[0]
        assert destination == "b"
        assert delta.fact.values == ("b", "a")

    def test_missing_send_callback_raises(self):
        engine = NDlogEngine("a", parse_program("r1 reach(@D,S) :- link(@S,D,C)."))
        engine.insert(Fact("link", ("a", "b", 1)))
        with pytest.raises(EvaluationError):
            engine.run()

    def test_local_head_not_sent(self):
        sent = []
        engine = NDlogEngine(
            "a", parse_program("r1 reach(@S,D) :- link(@S,D,C)."),
            send=lambda destination, delta: sent.append(destination),
        )
        engine.insert(Fact("link", ("a", "b", 1)))
        engine.run()
        assert sent == []
        assert engine.has_fact("reach", ("a", "b"))


class TestListeners:
    def test_rule_listener_sees_firings(self):
        firings = []
        engine = single_node_engine("r1 reach(@S,D) :- link(@S,D,C).")
        engine.add_rule_listener(firings.append)
        engine.insert(Fact("link", ("n", "m", 1)))
        engine.run()
        assert len(firings) == 1
        assert firings[0].rule.label == "r1"
        assert firings[0].action == INSERT
        assert firings[0].head_fact.name == "reach"
        assert firings[0].body_facts[0].name == "link"

    def test_update_listener_sees_insert_and_delete(self):
        updates = []
        engine = single_node_engine("r1 reach(@S,D) :- link(@S,D,C).")
        engine.add_update_listener(lambda action, fact: updates.append((action, fact.name)))
        engine.insert(Fact("link", ("n", "m", 1)))
        engine.run()
        engine.delete(Fact("link", ("n", "m", 1)))
        engine.run()
        names = [(action, name) for action, name in updates]
        assert (INSERT, "link") in names
        assert (INSERT, "reach") in names
        assert (DELETE, "reach") in names


class _SetAnnotationPolicy(AnnotationPolicy):
    """Simple annotation policy: sets of base-tuple identifiers."""

    propagate_updates = True

    def base(self, fact):
        return frozenset({str(fact)})

    def combine(self, rule, body_annotations, node):
        combined = frozenset()
        for annotation in body_annotations:
            if annotation:
                combined |= annotation
        return combined

    def merge(self, existing, new):
        return existing | new

    def size(self, annotation):
        return sum(len(item) for item in annotation)


class TestAnnotations:
    def test_annotations_combined_through_rules(self):
        engine = NDlogEngine(
            "n",
            parse_program("r1 pair(@S,A,B) :- left(@S,A), right(@S,B)."),
            annotation_policy=_SetAnnotationPolicy(),
        )
        engine.insert(Fact("left", ("n", 1)))
        engine.insert(Fact("right", ("n", 2)))
        engine.run()
        annotation = engine.annotation_of(Fact("pair", ("n", 1, 2)))
        assert len(annotation) == 2

    def test_alternative_derivations_merge_annotations(self):
        engine = NDlogEngine(
            "n",
            parse_program(
                """
                r1 reach(@S,D) :- red(@S,D).
                r2 reach(@S,D) :- blue(@S,D).
                """
            ),
            annotation_policy=_SetAnnotationPolicy(),
        )
        engine.insert(Fact("red", ("n", "m")))
        engine.insert(Fact("blue", ("n", "m")))
        engine.run()
        annotation = engine.annotation_of(Fact("reach", ("n", "m")))
        assert len(annotation) == 2

    def test_refresh_propagates_annotation_change_downstream(self):
        engine = NDlogEngine(
            "n",
            parse_program(
                """
                r1 mid(@S,D) :- red(@S,D).
                r2 mid(@S,D) :- blue(@S,D).
                r3 top(@S,D) :- mid(@S,D).
                """
            ),
            annotation_policy=_SetAnnotationPolicy(),
        )
        engine.insert(Fact("red", ("n", "m")))
        engine.run()
        assert len(engine.annotation_of(Fact("top", ("n", "m")))) == 1
        engine.insert(Fact("blue", ("n", "m")))
        engine.run()
        assert len(engine.annotation_of(Fact("top", ("n", "m")))) == 2

    def test_annotation_cleared_on_delete(self):
        engine = NDlogEngine(
            "n",
            parse_program("r1 reach(@S,D) :- red(@S,D)."),
            annotation_policy=_SetAnnotationPolicy(),
        )
        engine.insert(Fact("red", ("n", "m")))
        engine.run()
        engine.delete(Fact("red", ("n", "m")))
        engine.run()
        assert engine.annotation_of(Fact("reach", ("n", "m"))) is None


class TestRefreshRacesAheadOfInsert:
    """Regression: a REFRESH arriving before its INSERT must not jump the queue.

    The old fallback re-enqueued the converted INSERT at the *back* of the
    queue, letting deltas that arrived later (including the rest of the
    refresh's own batch) overtake it.  The fix applies the conversion at
    the refresh's own queue position, preserving FIFO arrival order — in
    both the batched and the legacy pipeline.
    """

    def _engine(self, pipeline: str) -> NDlogEngine:
        engine = NDlogEngine(
            "n",
            parse_program("r1 reach(@S,D) :- red(@S,D)."),
            annotation_policy=_SetAnnotationPolicy(),
            pipeline=pipeline,
        )
        return engine

    @pytest.mark.parametrize("pipeline", ["batched", "delta"])
    def test_converted_insert_keeps_its_queue_position(self, pipeline):
        engine = self._engine(pipeline)
        seen = []
        engine.add_update_listener(
            lambda action, fact: seen.append(
                (action, fact.name, engine.annotation_of(fact))
            )
        )
        fact = Fact("red", ("n", "m"))
        # The refresh for `fact` arrives first (raced ahead of its insert),
        # then the insert carrying a different annotation.
        engine.enqueue(Delta(REFRESH, fact, frozenset({"from-refresh"})))
        engine.enqueue(Delta(INSERT, fact, frozenset({"from-insert"})))
        engine.run()
        # The tuple must become visible from the *refresh's* position with
        # the refresh's annotation; the later insert merges into it.  The
        # old behaviour surfaced "from-insert" first.
        visible = [entry for entry in seen if entry[:2] == (INSERT, "red")]
        assert visible and visible[0][2] == frozenset({"from-refresh"})
        assert engine.annotation_of(fact) == frozenset(
            {"from-refresh", "from-insert"}
        )
        assert engine.has_fact("red", ("n", "m"))

    @pytest.mark.parametrize("pipeline", ["batched", "delta"])
    def test_refresh_without_policy_or_annotation_is_ignored(self, pipeline):
        engine = NDlogEngine(
            "n",
            parse_program("r1 reach(@S,D) :- red(@S,D)."),
            pipeline=pipeline,
        )
        engine.enqueue(Delta(REFRESH, Fact("red", ("n", "m")), None))
        engine.run()
        assert not engine.has_fact("red", ("n", "m"))


class TestDeltaValidation:
    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            Delta("upsert", Fact("x", (1,)))

    def test_refresh_delta_flags(self):
        delta = Delta(REFRESH, Fact("x", (1,)))
        assert delta.is_refresh
        assert not delta.is_insert

    def test_max_steps_bounds_batched_processing(self):
        """run(max_steps=N) must never process more than N deltas, even
        when a same-(predicate, action) run could be drained as a batch."""
        engine = single_node_engine("r1 reach(@S,D) :- link(@S,D,C).")
        for index in range(5):
            engine.insert(Fact("link", ("n", f"m{index}", 1)))
        assert engine.run(max_steps=1) == 1
        assert engine.run(max_steps=3) == 3
        assert engine.run() >= 1  # drain the rest

    def test_engine_stats_track_processing(self):
        engine = single_node_engine("r1 reach(@S,D) :- link(@S,D,C).")
        engine.insert(Fact("link", ("n", "m", 1)))
        engine.run()
        assert engine.stats["deltas_processed"] >= 2
        assert engine.stats["rule_firings"] >= 1
