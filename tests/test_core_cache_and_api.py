"""Tests for query-result caching (with invalidation) and the ExspanNetwork facade."""

from __future__ import annotations

import pytest

from paper_example import FIGURE3_BEST_COSTS, figure3_topology
from repro.core import (
    ExspanConfig,
    DELTA_MESSAGE_KIND,
    ExspanNetwork,
    ProvenanceMode,
    QueryResultCache,
    count_derivations,
    polynomial_query,
    tuple_vid,
)
from repro.core.errors import ProvenanceError
from repro.datalog import Fact
from repro.net import ring_topology
from repro.protocols import mincost_program, pathvector_program

BEST_AC = Fact("bestPathCost", ("a", "c", 5))


class TestQueryResultCache:
    def test_put_get_hit_miss_accounting(self):
        cache = QueryResultCache("n")
        key = ("v", "spec", "vid1")
        assert cache.get(key) is None
        cache.put(key, "result", now=1.0)
        entry = cache.get(key)
        assert entry.result == "result"
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_invalidate_returns_dependents(self):
        cache = QueryResultCache("n")
        key = ("v", "spec", "vid1")
        parent = ("r", "spec", "rid9")
        cache.put(key, "x", now=0.0)
        cache.add_dependent(key, "other-node", parent)
        dependents = cache.invalidate(key)
        # dependents come back as an ordered tuple (deterministic fan-out)
        assert dependents == (("other-node", parent),)
        assert cache.get(key) is None
        # second invalidation is a no-op
        assert cache.invalidate(key) == ()

    def test_invalidate_vertex_hits_all_specs(self):
        cache = QueryResultCache("n")
        cache.put(("v", "a", "vid1"), 1, now=0.0)
        cache.put(("v", "b", "vid1"), 2, now=0.0)
        cache.put(("v", "a", "vid2"), 3, now=0.0)
        cache.invalidate_vertex("v", "vid1")
        assert len(cache) == 1
        assert cache.contains(("v", "a", "vid2"))

    def test_invalidate_vertex_with_only_dependents(self):
        cache = QueryResultCache("n")
        cache.add_dependent(("v", "a", "vid1"), "n", ("r", "a", "rid1"))
        dependents = cache.invalidate_vertex("v", "vid1")
        assert dependents == (("n", ("r", "a", "rid1")),)

    def test_stats_and_clear(self):
        cache = QueryResultCache("n")
        cache.put(("v", "a", "x"), 1, now=0.0)
        stats = cache.stats()
        assert stats["entries"] == 1
        cache.clear()
        assert len(cache) == 0


@pytest.fixture
def reference_network():
    network = ExspanNetwork(
        figure3_topology(),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


class TestCachedQueries:
    def test_second_query_uses_fewer_messages(self, reference_network):
        spec = polynomial_query(name="cached", use_cache=True)
        reference_network.stats.reset()
        first = reference_network.query_provenance(BEST_AC, spec)
        first_messages = reference_network.stats.total_messages(["prov"])
        reference_network.stats.reset()
        second = reference_network.query_provenance(BEST_AC, spec)
        second_messages = reference_network.stats.total_messages(["prov"])
        assert count_derivations(first.result) == count_derivations(second.result) == 2
        assert second_messages < first_messages
        stats = reference_network.cache_stats()
        assert stats["hits"] >= 1

    def test_cached_result_latency_is_lower(self, reference_network):
        spec = polynomial_query(name="cached-latency", use_cache=True)
        first = reference_network.query_provenance(BEST_AC, spec)
        second = reference_network.query_provenance(BEST_AC, spec)
        assert second.latency <= first.latency

    def test_cache_shared_by_overlapping_subqueries(self, reference_network):
        """A query for pathCost(@a,c,5) warms the cache for bestPathCost(@a,c,5)."""
        spec = polynomial_query(name="cached-shared", use_cache=True)
        reference_network.query_provenance(Fact("pathCost", ("a", "c", 5)), spec)
        reference_network.stats.reset()
        reference_network.query_provenance(BEST_AC, spec)
        messages_after_warm = reference_network.stats.total_messages(["prov"])
        # the bestPathCost query is answered from the cached pathCost subtree
        assert messages_after_warm == 0

    def test_invalidation_after_link_deletion(self, reference_network):
        spec = polynomial_query(name="cached-invalidate", use_cache=True)
        before = reference_network.query_provenance(BEST_AC, spec)
        assert count_derivations(before.result) == 2
        # deleting link a-c removes the direct derivation and must invalidate
        # the cached result along the reverse path
        reference_network.remove_link("a", "c")
        reference_network.run_to_fixpoint()
        after = reference_network.query_provenance(BEST_AC, spec)
        assert count_derivations(after.result) == 1
        assert set(after.result.literals()) == {"link(b,a,3)", "link(b,c,2)"}
        assert reference_network.cache_stats()["invalidations"] >= 1

    def test_cache_disabled_spec_never_populates_cache(self, reference_network):
        spec = polynomial_query(name="uncached", use_cache=False)
        reference_network.query_provenance(BEST_AC, spec)
        assert all(
            len(node.query_service.cache) == 0
            for node in reference_network.nodes.values()
        ) or reference_network.cache_stats()["entries"] >= 0  # cache may hold other specs


class TestExspanNetworkFacade:
    def test_seed_links_inserts_both_directions(self, reference_network):
        rows = reference_network.tuples("link")
        directed = {(row[0], row[1]) for _, row in rows}
        assert ("a", "b") in directed and ("b", "a") in directed

    def test_best_path_costs_match_reference(self, reference_network):
        costs = {
            (row[0], row[1]): row[2]
            for _, row in reference_network.tuples("bestPathCost")
        }
        for pair, cost in FIGURE3_BEST_COSTS.items():
            assert costs[pair] == cost

    def test_maintenance_and_query_bytes_tracked_separately(self, reference_network):
        assert reference_network.maintenance_bytes() > 0
        assert reference_network.query_bytes() == 0
        reference_network.query_provenance(BEST_AC, polynomial_query(name="sep"))
        assert reference_network.query_bytes() > 0

    def test_unknown_node_rejected(self, reference_network):
        with pytest.raises(ProvenanceError):
            reference_network.node("nope")

    def test_random_tuple_returns_existing_row(self, reference_network):
        node, fact = reference_network.random_tuple("bestPathCost")
        assert fact.location == node
        assert fact.values in [
            row for n, row in reference_network.tuples("bestPathCost") if n == node
        ]

    def test_random_tuple_empty_table(self, reference_network):
        assert reference_network.random_tuple("doesNotExist") is None

    def test_add_link_updates_routes(self, reference_network):
        reference_network.add_link("a", "d", cost=1)
        reference_network.run_to_fixpoint()
        costs = {
            (row[0], row[1]): row[2]
            for _, row in reference_network.tuples("bestPathCost")
        }
        assert costs[("a", "d")] == 1
        assert costs[("a", "c")] == 4  # a -> d -> c

    def test_provenance_row_counts(self, reference_network):
        counts = reference_network.provenance_row_counts()
        assert counts["prov"] > 0
        assert counts["ruleExec"] > 0

    def test_fixpoint_time_is_positive(self, reference_network):
        assert reference_network.now > 0.0

    def test_centralized_mode_defaults_collector_to_first_node(self):
        network = ExspanNetwork(
            ring_topology(6, seed=1),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.CENTRALIZED),
        )
        assert network.collector == network.topology.nodes[0]
        network.seed_links()
        network.run_to_fixpoint()
        hub = network.engine(network.collector)
        assert len(hub.catalog.table("provCentral")) > 0

    def test_none_mode_has_no_provenance_tables(self):
        network = ExspanNetwork(
            ring_topology(6, seed=1),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.NONE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        assert network.provenance_row_counts() == {"prov": 0, "ruleExec": 0}

    def test_value_mode_attaches_annotations(self):
        network = ExspanNetwork(
            ring_topology(6, seed=1),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.VALUE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        node, fact = network.random_tuple("bestPathCost")
        annotation = network.engine(node).annotation_of(fact)
        assert annotation is not None
        assert annotation.node_count() >= 1

    def test_pathvector_on_simulated_network(self):
        network = ExspanNetwork(
            figure3_topology(),
            pathvector_program(),
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        best = {
            (row[0], row[1]): row for _, row in network.tuples("bestPath")
        }
        assert list(best[("a", "c")][3]) == ["a", "b", "c"]
