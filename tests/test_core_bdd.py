"""Tests for the pure-Python ROBDD implementation (absorption provenance)."""

from __future__ import annotations

from itertools import product as iter_product

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BddManager
from repro.core.bdd import Bdd, bdd_cache_stats, export_bdd, import_bdd
from repro.core.semiring import product_of, sum_of, var


class TestBasics:
    def test_constants(self):
        manager = BddManager()
        assert manager.true().is_true
        assert manager.false().is_false
        assert not manager.var("x").is_true

    def test_variable_evaluation(self):
        manager = BddManager()
        x = manager.var("x")
        assert x.evaluate({"x": True})
        assert not x.evaluate({"x": False})
        assert not x.evaluate({})

    def test_and_or_not(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        both = x & y
        either = x | y
        neither = ~either
        assert both.evaluate({"x": True, "y": True})
        assert not both.evaluate({"x": True, "y": False})
        assert either.evaluate({"x": False, "y": True})
        assert neither.evaluate({"x": False, "y": False})
        assert not neither.evaluate({"x": True, "y": False})

    def test_canonicity_same_function_same_node(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        left = (x & y) | (x & ~y)
        assert left == x  # simplifies to x
        assert (x | y) == (y | x)

    def test_idempotence_and_identity_laws(self):
        manager = BddManager()
        x = manager.var("x")
        assert (x & x) == x
        assert (x | x) == x
        assert (x & manager.true()) == x
        assert (x | manager.false()) == x
        assert (x & manager.false()).is_false
        assert (x | manager.true()).is_true

    def test_different_managers_cannot_mix(self):
        a, b = BddManager(), BddManager()
        with pytest.raises(ValueError):
            _ = a.var("x") & b.var("x")

    def test_restrict(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        expression = (x & y) | (~x & ~y)
        assert expression.restrict({"x": True}) == y
        assert expression.restrict({"x": False}) == ~y
        assert expression.restrict({"x": True, "y": True}).is_true

    def test_support(self):
        manager = BddManager()
        x, y, z = manager.var("x"), manager.var("y"), manager.var("z")
        expression = (x & y) | (x & ~y)  # == x
        assert expression.support() == frozenset({"x"})
        assert ((x & y) | z).support() == frozenset({"x", "y", "z"})

    def test_node_count_and_wire_size(self):
        manager = BddManager()
        x, y = manager.var("x"), manager.var("y")
        expression = x & y
        assert expression.node_count() == 2
        assert expression.wire_size() > expression.node_count()
        assert manager.true().node_count() == 0


class TestAbsorptionProvenance:
    def test_paper_absorption_example(self):
        """a + a*b condenses to a (Section 6.3)."""
        manager = BddManager()
        a, b = manager.var("a"), manager.var("b")
        condensed = a | (a & b)
        assert condensed == a
        assert condensed.support() == frozenset({"a"})

    def test_from_expression_matches_manual_construction(self):
        manager = BddManager()
        expression = sum_of([var("a"), product_of([var("b"), var("c")])])
        built = manager.from_expression(expression)
        manual = manager.var("a") | (manager.var("b") & manager.var("c"))
        assert built == manual

    def test_satisfying_products_minimal_dnf(self):
        manager = BddManager()
        expression = product_of([var("a"), sum_of([var("a"), var("b")])])
        bdd = manager.from_expression(expression)
        assert bdd.satisfying_products() == frozenset({frozenset({"a"})})

    def test_from_dnf(self):
        manager = BddManager()
        bdd = manager.from_dnf([["a", "b"], ["c"]])
        assert bdd.evaluate({"c": True})
        assert bdd.evaluate({"a": True, "b": True})
        assert not bdd.evaluate({"a": True})

    def test_empty_dnf_is_false(self):
        manager = BddManager()
        assert manager.from_dnf([]).is_false


# random monotone DNF formulas over a tiny alphabet
_VARIABLES = ["v0", "v1", "v2", "v3"]
_dnfs = st.lists(
    st.lists(st.sampled_from(_VARIABLES), min_size=1, max_size=3, unique=True),
    min_size=0,
    max_size=5,
)


def _truth_table_matches(bdd, dnf) -> bool:
    for assignment_bits in iter_product([False, True], repeat=len(_VARIABLES)):
        assignment = dict(zip(_VARIABLES, assignment_bits))
        expected = any(all(assignment[name] for name in product) for product in dnf)
        if bdd.evaluate(assignment) != expected:
            return False
    return True


class TestBddProperties:
    @settings(deadline=None, max_examples=60)
    @given(_dnfs)
    def test_bdd_agrees_with_brute_force_truth_table(self, dnf):
        manager = BddManager()
        bdd = manager.from_dnf(dnf)
        assert _truth_table_matches(bdd, dnf)

    @settings(deadline=None, max_examples=60)
    @given(_dnfs, _dnfs)
    def test_or_and_are_sound(self, left, right):
        manager = BddManager()
        combined_or = manager.from_dnf(left) | manager.from_dnf(right)
        assert _truth_table_matches(combined_or, list(left) + list(right))

    @settings(deadline=None, max_examples=60)
    @given(_dnfs)
    def test_double_negation_is_identity(self, dnf):
        manager = BddManager()
        bdd = manager.from_dnf(dnf)
        assert ~(~bdd) == bdd

    @settings(deadline=None, max_examples=60)
    @given(_dnfs)
    def test_satisfying_products_round_trip(self, dnf):
        """from_dnf -> satisfying_products -> from_dnf is the same function."""
        manager = BddManager()
        bdd = manager.from_dnf(dnf)
        round_tripped = manager.from_dnf(bdd.satisfying_products())
        assert round_tripped == bdd

    @settings(deadline=None, max_examples=40)
    @given(_dnfs)
    def test_canonical_equality_of_reordered_dnf(self, dnf):
        manager = BddManager()
        assert manager.from_dnf(dnf) == manager.from_dnf(list(reversed(dnf)))


class TestComputedTableAndTransport:
    """PR 5 satellites: bounded computed table, walk caches, canonical order."""

    def test_cache_stats_report_hits_and_misses(self):
        manager = BddManager()
        a, b = manager.var("aa"), manager.var("bb")
        _ = a & b
        first = manager.cache_stats()
        assert first["apply_cache_misses"] >= 1
        _ = a & b  # same computed-table key
        second = manager.cache_stats()
        assert second["apply_cache_hits"] > first["apply_cache_hits"]
        assert bdd_cache_stats()["apply_cache_misses"] >= second["apply_cache_misses"]

    def test_computed_table_is_bounded_and_flushes(self):
        # The limit must comfortably hold one top-level apply's working set
        # (a flush mid-recursion forfeits that call's memoization); what is
        # bounded is the *cumulative* growth across many applies.
        manager = BddManager(apply_cache_limit=64)
        accumulator = manager.false()
        for index in range(14):
            # pair members adjacent in the (lexicographic) variable order,
            # so the accumulated BDD stays linear-sized
            accumulator = accumulator | (
                manager.var(f"x{index:02d}a") & manager.var(f"x{index:02d}b")
            )
        stats = manager.cache_stats()
        assert stats["apply_cache_flushes"] >= 1
        assert stats["apply_cache_entries"] <= 64
        # flushing is pure memoization policy: results stay canonical
        rebuilt = BddManager().from_dnf(accumulator.satisfying_products())
        assert rebuilt.node_count() == accumulator.node_count()

    def test_node_count_and_wire_size_cached_per_node_id(self):
        manager = BddManager()
        bdd = manager.from_dnf([["aa", "bb"], ["cc"]])
        count, size = bdd.node_count(), bdd.wire_size()
        assert manager.cache_stats()["node_count_cached"] >= 1
        # a fresh handle to the same node reuses the cached walk results
        handle = Bdd(manager, bdd.node_id)
        assert handle.node_count() == count
        assert handle.wire_size() == size

    def test_variable_order_is_name_canonical_across_managers(self):
        left = BddManager()
        one = (left.var("zz") & left.var("aa")) | left.var("mm")
        right = BddManager()
        other = right.var("mm") | (right.var("aa") & right.var("zz"))
        assert one.node_count() == other.node_count()
        assert one.wire_size() == other.wire_size()
        assert export_bdd(one) == export_bdd(other)

    def test_export_import_round_trip(self):
        source = BddManager()
        bdd = source.from_dnf([["aa", "bb"], ["bb", "cc"], ["dd"]])
        destination = BddManager()
        imported = import_bdd(destination, export_bdd(bdd))
        assert imported.node_count() == bdd.node_count()
        assert imported.wire_size() == bdd.wire_size()
        assert imported.satisfying_products() == bdd.satisfying_products()
        # importing into the source manager resolves to the very same node
        assert import_bdd(source, export_bdd(bdd)) == bdd
