"""Unit and property-based tests for incremental aggregates."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.datalog.aggregates import SUPPORTED_AGGREGATES, AggregateState
from repro.datalog.errors import EvaluationError


class TestBasics:
    def test_unsupported_aggregate_rejected(self):
        with pytest.raises(EvaluationError):
            AggregateState("median")

    @pytest.mark.parametrize("func", SUPPORTED_AGGREGATES)
    def test_empty_state(self, func):
        state = AggregateState(func)
        assert state.is_empty
        assert len(state) == 0

    def test_min_incremental(self):
        state = AggregateState("min")
        state.insert(5)
        assert state.current() == 5
        state.insert(3)
        assert state.current() == 3
        state.insert(7)
        assert state.current() == 3
        state.delete(3)
        assert state.current() == 5

    def test_max_incremental(self):
        state = AggregateState("max")
        for value in (1, 9, 4):
            state.insert(value)
        assert state.current() == 9
        state.delete(9)
        assert state.current() == 4

    def test_count(self):
        state = AggregateState("count")
        assert state.current() == 0
        state.insert(1)
        state.insert(1)
        state.insert(2)
        assert state.current() == 3
        state.delete(1)
        assert state.current() == 2

    def test_sum(self):
        state = AggregateState("sum")
        state.insert(4)
        state.insert(6)
        assert state.current() == 10
        state.delete(4)
        assert state.current() == 6

    def test_agglist_contains_duplicates(self):
        state = AggregateState("agglist")
        state.insert("a")
        state.insert("a")
        state.insert("b")
        result = state.current()
        assert sorted(result) == ["a", "a", "b"]

    def test_agglist_with_tuple_values(self):
        state = AggregateState("agglist")
        state.insert(("rid1", "a"))
        state.insert(("rid2", "b"))
        assert sorted(state.current()) == [["rid1", "a"], ["rid2", "b"]]

    def test_delete_unknown_value_is_ignored(self):
        state = AggregateState("min")
        state.insert(2)
        state.delete(99)
        assert state.current() == 2

    def test_duplicate_values_tracked_with_multiplicity(self):
        state = AggregateState("min")
        state.insert(2)
        state.insert(2)
        state.delete(2)
        assert not state.is_empty
        assert state.current() == 2
        state.delete(2)
        assert state.is_empty

    def test_current_on_empty_min_raises(self):
        with pytest.raises(EvaluationError):
            AggregateState("min").current()

    def test_argmin_like_value(self):
        state = AggregateState("min")
        state.insert(5)
        state.insert(2)
        assert state.argmin_like_value() == 2
        assert AggregateState("count").argmin_like_value() is None

    def test_contributing_values(self):
        state = AggregateState("max")
        state.insert(1)
        state.insert(1)
        state.insert(3)
        assert sorted(state.contributing_values()) == [1, 1, 3]

    def test_list_values_normalized(self):
        state = AggregateState("agglist")
        state.insert(["x", "y"])
        state.delete(["x", "y"])
        assert state.is_empty


class TestPropertyBased:
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=40))
    def test_min_matches_builtin(self, values):
        state = AggregateState("min")
        for value in values:
            state.insert(value)
        assert state.current() == min(values)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=40))
    def test_max_matches_builtin(self, values):
        state = AggregateState("max")
        for value in values:
            state.insert(value)
        assert state.current() == max(values)

    @given(st.lists(st.integers(-100, 100), max_size=40))
    def test_sum_and_count_match_builtin(self, values):
        sum_state = AggregateState("sum")
        count_state = AggregateState("count")
        for value in values:
            sum_state.insert(value)
            count_state.insert(value)
        assert sum_state.current() == sum(values)
        assert count_state.current() == len(values)

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=30),
        st.data(),
    )
    def test_insert_then_delete_subset_matches_recompute(self, values, data):
        state = AggregateState("min")
        for value in values:
            state.insert(value)
        to_delete = data.draw(
            st.lists(st.sampled_from(values), max_size=len(values), unique_by=id)
        )
        remaining = list(values)
        for value in to_delete:
            if value in remaining:
                remaining.remove(value)
                state.delete(value)
        if remaining:
            assert state.current() == min(remaining)
        else:
            assert state.is_empty

    @given(st.lists(st.integers(0, 10), max_size=30))
    def test_interleaved_insert_delete_never_negative_count(self, values):
        state = AggregateState("count")
        for value in values:
            state.insert(value)
            state.delete(value)
            state.delete(value)  # extra delete must be ignored
        assert state.current() == 0
        assert state.is_empty
