"""End-to-end integration tests across the whole stack.

These tests exercise the scenarios the paper motivates: network debugging
(trace a route's derivation), trust management (accept or reject state based
on who produced it), and dynamic maintenance under topology change — all on
the simulated network with reference-based provenance.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ExspanConfig,
    ExspanNetwork,
    Granularity,
    GranularitySpec,
    ProvenanceMode,
    bdd_query,
    count_derivations,
    derivability_query,
    derivation_count_query,
    node_set_query,
    polynomial_query,
    tuple_vid,
)
from repro.datalog import Fact
from repro.net import grid_topology, ring_topology, transit_stub_topology
from repro.protocols import (
    mincost_program,
    packet_event,
    packetforward_program,
    pathvector_program,
)


class TestControlAndDataPlaneTogether:
    @pytest.fixture(scope="class")
    def network(self):
        program = pathvector_program().extended(packetforward_program(), "pv+fwd")
        network = ExspanNetwork(
            ring_topology(8, seed=11),
            program,
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        return network

    def test_routes_converge_for_all_pairs(self, network):
        pairs = {(row[0], row[1]) for _, row in network.tuples("bestPath")}
        nodes = network.addresses()
        assert len(pairs) == len(nodes) * (len(nodes) - 1)

    def test_packets_follow_computed_routes(self, network):
        source, destination = "n0", "n4"
        engine = network.engine(source)
        engine.insert(packet_event(source, source, destination, "payload-123"))
        engine.run()
        network.run_to_fixpoint()
        received = [
            row for _, row in network.tuples("recvPacket") if row[3] == "payload-123"
        ]
        assert len(received) == 1
        assert received[0][0] == destination

    def test_route_provenance_lists_links_on_path(self, network):
        _, best_path_row = next(
            (node, row)
            for node, row in network.tuples("bestPath")
            if row[0] == "n0" and row[1] == "n2"
        )
        path = list(best_path_row[3])
        outcome = network.query_provenance(
            Fact("bestPath", best_path_row), polynomial_query(name="route-prov")
        )
        literals = set(outcome.result.literals())
        # every consecutive hop of the path appears as a link base tuple
        # (the derivation uses the link stored at the upstream node, i.e. the
        # reverse direction of the forwarding path, so accept either).
        for hop_source, hop_destination in zip(path, path[1:]):
            assert any(
                literal.startswith(f"link({hop_source},{hop_destination}")
                or literal.startswith(f"link({hop_destination},{hop_source}")
                for literal in literals
            )

    def test_bestpath_has_single_derivation(self, network):
        _, fact = network.random_tuple("bestPath")
        outcome = network.query_provenance(
            fact, derivation_count_query(name="pv-count")
        )
        assert outcome.result >= 1


class TestTrustManagementScenario:
    @pytest.fixture(scope="class")
    def network(self):
        network = ExspanNetwork(
            transit_stub_topology(domains=1, nodes_per_stub=2, seed=3),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        return network

    def test_node_level_provenance_identifies_participants(self, network):
        node, fact = network.random_tuple("bestPathCost")
        nodes_involved = network.query_provenance(
            fact, node_set_query(name="tm-nodes")
        ).result
        assert fact.values[0] in nodes_involved
        assert len(nodes_involved) >= 1

    def test_derivability_respects_trusted_node_set(self, network):
        node, fact = network.random_tuple("bestPathCost")
        participants = network.query_provenance(
            fact, node_set_query(name="tm-nodes2")
        ).result
        granularity = GranularitySpec(Granularity.NODE)
        trusted_all = network.query_provenance(
            fact,
            derivability_query(
                name="tm-trust-all", trusted=participants, granularity=granularity
            ),
        )
        assert trusted_all.result is True
        trusted_none = network.query_provenance(
            fact,
            derivability_query(
                name="tm-trust-none", trusted={"nobody"}, granularity=granularity
            ),
        )
        assert trusted_none.result is False

    def test_trust_domain_granularity_groups_nodes(self, network):
        node, fact = network.random_tuple("bestPathCost")
        spec = bdd_query(
            name="tm-domain",
            granularity=GranularitySpec(Granularity.TRUST_DOMAIN),
        )
        outcome = network.query_provenance(fact, spec)
        # domain identifiers are node-name prefixes like "s0" / "t0"
        assert all(
            name.startswith(("s", "t")) and "_" not in name
            for name in outcome.result.support()
        )


class TestDynamicMaintenance:
    def test_provenance_tracks_topology_changes(self):
        network = ExspanNetwork(
            grid_topology(3, 3),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        corner_to_corner = Fact("bestPathCost", ("g0_0", "g2_2", 4))
        before = network.query_provenance(
            corner_to_corner, derivation_count_query(name="dyn-count")
        )
        assert before.result >= 2  # several equal-cost grid paths
        # add a shortcut: best cost drops to 1 with a single derivation
        network.add_link("g0_0", "g2_2", cost=1)
        network.run_to_fixpoint()
        shortcut = Fact("bestPathCost", ("g0_0", "g2_2", 1))
        after = network.query_provenance(
            shortcut, polynomial_query(name="dyn-poly")
        )
        assert count_derivations(after.result) == 1
        assert set(after.result.literals()) == {"link(g0_0,g2_2,1)"}
        # the old cost-4 tuple is gone everywhere
        assert all(
            row != ("g0_0", "g2_2", 4) for _, row in network.tuples("bestPathCost")
        )

    def test_consistency_between_graph_and_distributed_queries(self):
        network = ExspanNetwork(
            ring_topology(8, seed=13),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        graph = network.provenance_graph()
        assert graph.is_acyclic()
        for _ in range(5):
            node, fact = network.random_tuple("bestPathCost")
            vid = tuple_vid("bestPathCost", fact.values)
            distributed_nodes = network.query_provenance(
                fact, node_set_query(name="cons-nodes")
            ).result
            graph_nodes = graph.nodes_involved(vid)
            assert distributed_nodes == graph_nodes

    def test_modes_agree_on_protocol_state(self):
        """All four provenance modes compute identical routing state."""
        results = {}
        for mode in (
            ProvenanceMode.NONE,
            ProvenanceMode.REFERENCE,
            ProvenanceMode.VALUE,
            ProvenanceMode.CENTRALIZED,
        ):
            network = ExspanNetwork(
                ring_topology(8, seed=21), mincost_program(), config=ExspanConfig(mode=mode)
            )
            network.seed_links()
            network.run_to_fixpoint()
            results[mode] = {
                (row[0], row[1]): row[2] for _, row in network.tuples("bestPathCost")
            }
        baseline = results[ProvenanceMode.NONE]
        for mode, costs in results.items():
            assert costs == baseline, f"{mode} diverged from the baseline"
