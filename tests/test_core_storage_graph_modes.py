"""Tests for provenance storage access, the graph view, modes and granularity."""

from __future__ import annotations

import pytest

from paper_example import FIGURE3_NODES, insert_symmetric_links
from repro.core import (
    BddManager,
    BddValuePolicy,
    Granularity,
    GranularitySpec,
    PolynomialValuePolicy,
    ProvenanceError,
    ProvenanceGraph,
    ProvenanceMode,
    ProvenanceStore,
    build_global_graph,
    count_derivations,
    prefix_domain_map,
    prepare_program,
    rewrite_program,
    tuple_vid,
)
from repro.core.modes import CENTRAL_PROV_TABLE, CENTRAL_RULE_EXEC_TABLE
from repro.core.storage import ProvEntry, RuleExecEntry
from repro.datalog import Fact, StandaloneNetwork, parse_program
from repro.protocols import mincost_program


@pytest.fixture
def rewritten_network():
    network = StandaloneNetwork(FIGURE3_NODES, rewrite_program(mincost_program()))
    insert_symmetric_links(network)
    network.run()
    return network


class TestProvenanceStore:
    def test_fact_for_vid_resolves_local_tuples(self, rewritten_network):
        store = ProvenanceStore(rewritten_network.engine("a"))
        vid = tuple_vid("bestPathCost", ("a", "c", 5))
        fact = store.fact_for_vid(vid)
        assert fact is not None
        assert fact.name == "bestPathCost"
        assert fact.values == ("a", "c", 5)

    def test_fact_for_vid_unknown_returns_none(self, rewritten_network):
        store = ProvenanceStore(rewritten_network.engine("a"))
        assert store.fact_for_vid("0" * 20) is None

    def test_fact_for_vid_reflects_deletion(self, rewritten_network):
        store = ProvenanceStore(rewritten_network.engine("a"))
        vid = tuple_vid("link", ("a", "b", 3))
        assert store.fact_for_vid(vid) is not None
        rewritten_network.delete(Fact("link", ("a", "b", 3)))
        rewritten_network.run()
        assert store.fact_for_vid(vid) is None

    def test_derivation_count(self, rewritten_network):
        store = ProvenanceStore(rewritten_network.engine("a"))
        vid = tuple_vid("pathCost", ("a", "c", 5))
        assert store.derivation_count(vid) == 2
        assert not store.is_base(vid)
        assert store.is_base(tuple_vid("link", ("a", "c", 5)))

    def test_rule_exec_missing_returns_none(self, rewritten_network):
        store = ProvenanceStore(rewritten_network.engine("a"))
        assert store.rule_exec("f" * 20) is None

    def test_all_entries_enumerations(self, rewritten_network):
        store = ProvenanceStore(rewritten_network.engine("b"))
        assert len(store.all_prov_entries()) == store.prov_row_count()
        assert len(store.all_rule_exec_entries()) == store.rule_exec_row_count()

    def test_entry_reprs(self):
        prov = ProvEntry("a", "v" * 20, None, "a")
        rule = RuleExecEntry("a", "r" * 20, "sp1", ["v" * 20])
        assert prov.is_base
        assert "sp1" in repr(rule)
        assert "null" in repr(prov)


class TestProvenanceGraph:
    def test_empty_graph(self):
        graph = ProvenanceGraph()
        assert len(graph) == 0
        assert graph.is_acyclic()
        assert graph.derivations_of("missing") == []
        assert graph.reachable_base_tuples("missing") == frozenset()

    def test_to_dot_contains_labels(self, rewritten_network):
        stores = [ProvenanceStore(rewritten_network.engine(n)) for n in FIGURE3_NODES]
        graph = build_global_graph(stores)
        vid = tuple_vid("bestPathCost", ("a", "c", 5))
        dot = graph.to_dot(root=vid)
        assert "digraph provenance" in dot
        assert "sp3@a" in dot
        assert "link" in dot

    def test_full_graph_dot_larger_than_subgraph(self, rewritten_network):
        stores = [ProvenanceStore(rewritten_network.engine(n)) for n in FIGURE3_NODES]
        graph = build_global_graph(stores)
        vid = tuple_vid("bestPathCost", ("a", "c", 5))
        assert len(graph.to_dot()) > len(graph.to_dot(root=vid))

    def test_base_vids(self, rewritten_network):
        stores = [ProvenanceStore(rewritten_network.engine(n)) for n in FIGURE3_NODES]
        graph = build_global_graph(stores)
        assert tuple_vid("link", ("a", "b", 3)) in graph.base_vids()

    def test_cycle_detection(self):
        graph = ProvenanceGraph()
        graph.add_prov_entry(ProvEntry("a", "v1", "r1", "a"))
        graph.add_prov_entry(ProvEntry("a", "v2", "r2", "a"))
        graph.add_rule_exec(RuleExecEntry("a", "r1", "x", ["v2"]))
        graph.add_rule_exec(RuleExecEntry("a", "r2", "y", ["v1"]))
        assert not graph.is_acyclic()


class TestGranularity:
    def test_tuple_level_uses_fact_rendering(self):
        spec = GranularitySpec(Granularity.TUPLE)
        fact = Fact("link", ("a", "b", 3))
        assert spec.leaf_label(fact, "vid", "a") == "link(a,b,3)"

    def test_tuple_level_falls_back_to_vid(self):
        spec = GranularitySpec(Granularity.TUPLE)
        assert spec.leaf_label(None, "deadbeef", "a") == "deadbeef"

    def test_node_level(self):
        spec = GranularitySpec(Granularity.NODE)
        assert spec.leaf_label(Fact("link", ("a", "b", 3)), "vid", "a") == "a"

    def test_trust_domain_level_with_prefix_map(self):
        spec = GranularitySpec(Granularity.TRUST_DOMAIN)
        assert spec.leaf_label(None, "vid", "s0_1_2_3") == "s0"
        assert spec.leaf_label(None, "vid", "t1_2") == "t1"

    def test_custom_domain_map(self):
        spec = GranularitySpec(
            Granularity.TRUST_DOMAIN, domain_of=lambda node: "domainX"
        )
        assert spec.leaf_label(None, "vid", "anything") == "domainX"

    def test_describe(self):
        assert GranularitySpec(Granularity.NODE).describe() == "node"

    def test_prefix_domain_map_custom_separator(self):
        mapper = prefix_domain_map(separator="-")
        assert mapper("east-5") == "east"


class TestModes:
    def test_none_mode_returns_original_program(self):
        program = mincost_program()
        prepared = prepare_program(program, ProvenanceMode.NONE)
        assert prepared.program is program
        assert prepared.annotation_policy_factory is None

    def test_reference_mode_rewrites(self):
        prepared = prepare_program(mincost_program(), ProvenanceMode.REFERENCE)
        labels = {rule.label for rule in prepared.program.rules}
        assert any(label.endswith("_pprov") for label in labels)

    def test_value_mode_provides_policy_factory(self):
        prepared = prepare_program(mincost_program(), ProvenanceMode.VALUE)
        policy = prepared.annotation_policy_factory("n1")
        assert isinstance(policy, BddValuePolicy)
        # all nodes share the same manager
        other = prepared.annotation_policy_factory("n2")
        assert other.manager is policy.manager

    def test_value_mode_polynomial_policy(self):
        prepared = prepare_program(
            mincost_program(), ProvenanceMode.VALUE, value_policy="polynomial"
        )
        assert isinstance(prepared.annotation_policy_factory("n"), PolynomialValuePolicy)

    def test_value_mode_unknown_policy_rejected(self):
        with pytest.raises(ProvenanceError):
            prepare_program(mincost_program(), ProvenanceMode.VALUE, value_policy="xml")

    def test_centralized_mode_requires_collector(self):
        with pytest.raises(ProvenanceError):
            prepare_program(mincost_program(), ProvenanceMode.CENTRALIZED)

    def test_centralized_mode_adds_relay_rules(self):
        prepared = prepare_program(
            mincost_program(), ProvenanceMode.CENTRALIZED, collector="hub"
        )
        labels = {rule.label for rule in prepared.program.rules}
        assert "cent_prov" in labels
        assert "cent_ruleexec" in labels
        table_names = {decl.name for decl in prepared.program.declarations}
        assert CENTRAL_PROV_TABLE in table_names
        assert CENTRAL_RULE_EXEC_TABLE in table_names

    def test_centralized_execution_collects_at_hub(self):
        prepared = prepare_program(
            mincost_program(), ProvenanceMode.CENTRALIZED, collector="a"
        )
        network = StandaloneNetwork(FIGURE3_NODES, prepared.program)
        insert_symmetric_links(network)
        network.run()
        hub_engine = network.engine("a")
        central_rows = hub_engine.table_rows(CENTRAL_PROV_TABLE)
        assert len(central_rows) > 0
        # entries from remote nodes are present at the hub
        assert any(row[1] != "a" for row in central_rows)


class TestValuePolicies:
    def test_bdd_policy_combines_and_merges(self):
        policy = BddValuePolicy(BddManager())
        left = policy.base(Fact("link", ("a", "b", 1)))
        right = policy.base(Fact("link", ("b", "c", 1)))
        rule = parse_program("r1 x(@A) :- y(@A).").rules[0]
        joined = policy.combine(rule, [left, right], "a")
        assert joined.support() == left.support() | right.support()
        merged = policy.merge(left, joined)
        assert merged == left  # absorption: a + a*b = a
        assert policy.size(joined) > 0
        assert policy.size(None) == 0

    def test_polynomial_policy_merge_is_idempotent(self):
        policy = PolynomialValuePolicy()
        base = policy.base(Fact("link", ("a", "b", 1)))
        merged_once = policy.merge(base, base)
        assert merged_once == base
        rule = parse_program("r1 x(@A) :- y(@A).").rules[0]
        combined = policy.combine(rule, [base], "a")
        merged = policy.merge(base, combined)
        again = policy.merge(merged, combined)
        assert merged == again
        assert count_derivations(merged) == 2
