"""SQL provenance path vs the in-RAM graph and the distributed engine.

The sqlite backend's pre/post-order interval encoding turns provenance
reachability into indexed range scans plus one recursive interval-closure
CTE.  That makes it a *second, independent* oracle for the same
questions the paper's distributed query engine answers — so every kind
is cross-checked here against both:

* the in-RAM :class:`~repro.core.provenance_graph.ProvenanceGraph`
  (``nodes_involved`` / ``reachable_base_tuples``), and
* the distributed query engine itself
  (``net.execute(QueryRequest(..., SpecDescriptor(kind=...)))``).

A PATHVECTOR case exercises cyclic provenance (mutually-derivable
paths): the CTE's ``UNION`` dedup is what makes it terminate.
"""

import pytest

from repro.core.api import ExspanNetwork
from repro.core.config import ExspanConfig
from repro.core.errors import ProvenanceError
from repro.core.requests import QueryRequest, SpecDescriptor
from repro.core.vid import fact_vid
from repro.datalog.ast import Fact
from repro.net.topology import ring_topology
from repro.protocols.mincost import mincost_program
from repro.protocols.pathvector import pathvector_program
from repro.storage import SQL_QUERY_KINDS, StorageError


@pytest.fixture(scope="module")
def mincost_net():
    network = ExspanNetwork(
        ring_topology(6, seed=1),
        mincost_program(),
        config=ExspanConfig(seed=0, storage="sqlite"),
    )
    network.seed_links()
    network.run_to_fixpoint()
    yield network
    network.close_storage()


def _query_facts(network, table="bestPathCost", limit=6):
    facts = sorted((node, values) for node, values in network.tuples(table))
    return [Fact(table, values) for _node, values in facts[:limit]]


# ---------------------------------------------------------------------- #
# vs the in-RAM provenance graph
# ---------------------------------------------------------------------- #
def test_sql_matches_graph_oracle(mincost_net):
    graph = mincost_net.provenance_graph()
    for fact in _query_facts(mincost_net):
        vid = fact_vid(fact)
        assert mincost_net.sql_provenance("derivability", fact) is True
        assert mincost_net.sql_provenance("nodeset", vid=vid) == sorted(
            graph.nodes_involved(vid)
        )
        assert mincost_net.sql_provenance("reachable_base", vid=vid) == sorted(
            graph.reachable_base_tuples(vid)
        )


def test_sql_reachable_superset_of_bases(mincost_net):
    fact = _query_facts(mincost_net, limit=1)[0]
    vid = fact_vid(fact)
    reachable = mincost_net.sql_provenance("reachable", fact)
    bases = mincost_net.sql_provenance("reachable_base", fact)
    assert vid in reachable
    assert set(bases) <= set(reachable)
    # Base tuples of a mincost derivation are links.
    for base_vid in bases:
        resolved = mincost_net.storage.fact_for_vid(base_vid)
        assert resolved is not None and resolved.name == "link"


def test_sql_subgraph_edges_consistent(mincost_net):
    fact = _query_facts(mincost_net, limit=1)[0]
    vid = fact_vid(fact)
    reachable = set(mincost_net.sql_provenance("reachable", fact))
    edges = mincost_net.sql_provenance("subgraph", fact)
    assert edges, "a derived tuple must have derivation edges"
    for parent, rid, child in edges:
        assert parent in reachable
        assert child in reachable
        assert isinstance(rid, str) and rid
    # The subgraph spans the root: every reachable non-root vertex is
    # some edge's child.
    children = {child for _parent, _rid, child in edges}
    assert reachable - children == {vid} or vid in children


def test_sql_derivability_false_for_unknown_vid(mincost_net):
    assert mincost_net.sql_provenance("derivability", vid="0" * 40) is False
    assert mincost_net.sql_provenance("nodeset", vid="0" * 40) == []


# ---------------------------------------------------------------------- #
# vs the distributed query engine
# ---------------------------------------------------------------------- #
def test_sql_nodeset_matches_distributed_engine(mincost_net):
    for fact in _query_facts(mincost_net):
        result = mincost_net.execute(
            QueryRequest(fact=fact, spec=SpecDescriptor(kind="nodeset"))
        )
        distributed = sorted(result.result)
        sql = mincost_net.sql_provenance("nodeset", fact)
        assert sql == distributed


def test_sql_derivability_matches_distributed_engine(mincost_net):
    facts = _query_facts(mincost_net, limit=3)
    for fact in facts:
        result = mincost_net.execute(
            QueryRequest(fact=fact, spec=SpecDescriptor(kind="derivability"))
        )
        assert mincost_net.sql_provenance("derivability", fact) == bool(result.result)


# ---------------------------------------------------------------------- #
# cyclic provenance: PATHVECTOR's mutually-derivable paths
# ---------------------------------------------------------------------- #
def test_sql_terminates_on_cyclic_provenance():
    network = ExspanNetwork(
        ring_topology(5, seed=2),
        pathvector_program(),
        config=ExspanConfig(seed=0, storage="sqlite"),
    )
    try:
        network.seed_links()
        network.run_to_fixpoint()
        graph = network.provenance_graph()
        for fact in _query_facts(network, table="path", limit=8):
            vid = fact_vid(fact)
            assert network.sql_provenance("nodeset", vid=vid) == sorted(
                graph.nodes_involved(vid)
            )
            assert network.sql_provenance("reachable_base", vid=vid) == sorted(
                graph.reachable_base_tuples(vid)
            )
    finally:
        network.close_storage()


# ---------------------------------------------------------------------- #
# error surface
# ---------------------------------------------------------------------- #
def test_sql_provenance_argument_validation(mincost_net):
    fact = _query_facts(mincost_net, limit=1)[0]
    with pytest.raises(ProvenanceError):
        mincost_net.sql_provenance("nodeset")
    with pytest.raises(ProvenanceError):
        mincost_net.sql_provenance("nodeset", fact, vid="deadbeef")
    with pytest.raises(StorageError):
        mincost_net.sql_provenance("frobnicate", fact)


def test_sql_requires_persistent_backend():
    network = ExspanNetwork(
        ring_topology(4, seed=0), mincost_program(), config=ExspanConfig(seed=0)
    )
    network.seed_links()
    network.run_to_fixpoint()
    fact = _query_facts(network, limit=1)[0]
    with pytest.raises(StorageError):
        network.sql_provenance("nodeset", fact)


def test_sql_query_kinds_registry():
    assert SQL_QUERY_KINDS == (
        "reachable",
        "reachable_base",
        "nodeset",
        "derivability",
        "subgraph",
    )
