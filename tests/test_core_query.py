"""Tests for the distributed provenance query engine and its customizations."""

from __future__ import annotations

import pytest

from paper_example import figure3_topology
from repro.core import (
    ExspanConfig,
    ExspanNetwork,
    Granularity,
    GranularitySpec,
    ProvenanceMode,
    QueryError,
    TraversalOrder,
    bdd_query,
    count_derivations,
    derivability_query,
    derivation_count_query,
    domain_projection,
    node_set,
    node_set_query,
    polynomial_query,
    tuple_vid,
)
from repro.datalog import Fact
from repro.net import grid_topology
from repro.protocols import mincost_program


@pytest.fixture(scope="module")
def figure3_network():
    network = ExspanNetwork(
        figure3_topology(),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


@pytest.fixture(scope="module")
def grid_network():
    network = ExspanNetwork(
        grid_topology(4, 4),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


BEST_AC = Fact("bestPathCost", ("a", "c", 5))


class TestPolynomialQuery:
    def test_polynomial_for_paper_example(self, figure3_network):
        outcome = figure3_network.query_provenance(BEST_AC, polynomial_query(name="p1"))
        expression = outcome.result
        # two alternative derivations: direct link and via b (Figure 4)
        assert count_derivations(expression) == 2
        literals = set(expression.literals())
        assert literals == {"link(a,c,5)", "link(b,a,3)", "link(b,c,2)"}

    def test_node_level_granularity(self, figure3_network):
        spec = polynomial_query(
            name="p-node", granularity=GranularitySpec(Granularity.NODE)
        )
        outcome = figure3_network.query_provenance(BEST_AC, spec)
        # node-level provenance of bestPathCost(@a,c,5) is <a + a*b>
        assert set(outcome.result.literals()) == {"a", "b"}
        assert count_derivations(outcome.result) == 2

    def test_rule_annotations_present_in_rendering(self, figure3_network):
        outcome = figure3_network.query_provenance(BEST_AC, polynomial_query(name="p2"))
        text = str(outcome.result)
        assert "sp3@a" in text
        assert "sp2@b" in text

    def test_query_latency_positive_when_remote_hops_needed(self, figure3_network):
        outcome = figure3_network.query_provenance(BEST_AC, polynomial_query(name="p3"))
        assert outcome.latency > 0.0

    def test_query_from_remote_issuer(self, figure3_network):
        outcome = figure3_network.query_provenance(
            BEST_AC, polynomial_query(name="p4"), issuer="d"
        )
        assert count_derivations(outcome.result) == 2
        assert outcome.issuer == "d"

    def test_query_for_base_tuple(self, figure3_network):
        outcome = figure3_network.query_provenance(
            Fact("link", ("a", "b", 3)), polynomial_query(name="p5")
        )
        assert set(outcome.result.literals()) == {"link(a,b,3)"}
        assert count_derivations(outcome.result) == 1

    def test_query_for_unknown_tuple_returns_empty(self, figure3_network):
        outcome = figure3_network.query_provenance(
            Fact("bestPathCost", ("a", "zzz", 1)), polynomial_query(name="p6")
        )
        assert count_derivations(outcome.result) == 0

    def test_unregistered_spec_name_raises(self, figure3_network):
        with pytest.raises(QueryError):
            figure3_network.node("a").query_service.query(
                tuple_vid("bestPathCost", ("a", "c", 5)), "a", "never-registered",
                lambda outcome: None,
            )


class TestOtherCustomizations:
    def test_derivation_count_matches_polynomial(self, figure3_network):
        poly = figure3_network.query_provenance(BEST_AC, polynomial_query(name="c1"))
        count = figure3_network.query_provenance(BEST_AC, derivation_count_query(name="c2"))
        assert count.result == count_derivations(poly.result)

    def test_node_set_query_matches_graph(self, figure3_network):
        outcome = figure3_network.query_provenance(BEST_AC, node_set_query(name="n1"))
        assert outcome.result == frozenset({"a", "b"})

    def test_derivability_query_default_true(self, figure3_network):
        outcome = figure3_network.query_provenance(BEST_AC, derivability_query(name="d1"))
        assert outcome.result is True

    def test_derivability_with_trusted_nodes(self, figure3_network):
        granularity = GranularitySpec(Granularity.NODE)
        trusting_a = figure3_network.query_provenance(
            BEST_AC,
            derivability_query(name="d2", trusted={"a"}, granularity=granularity),
        )
        # the direct derivation only involves node a, so trusting a suffices
        assert trusting_a.result is True
        trusting_b = figure3_network.query_provenance(
            BEST_AC,
            derivability_query(name="d3", trusted={"b"}, granularity=granularity),
        )
        assert trusting_b.result is False

    def test_bdd_query_condenses_to_polynomial_dnf(self, figure3_network):
        poly = figure3_network.query_provenance(BEST_AC, polynomial_query(name="b1"))
        bdd = figure3_network.query_provenance(BEST_AC, bdd_query(name="b2"))
        assert bdd.result.satisfying_products() == poly.result.to_dnf()

    def test_bdd_query_node_granularity_absorbs(self, figure3_network):
        spec = bdd_query(name="b3", granularity=GranularitySpec(Granularity.NODE))
        outcome = figure3_network.query_provenance(BEST_AC, spec)
        # <a + a*b> condenses to <a> (Section 3, Representation)
        assert outcome.result.support() == frozenset({"a"})

    def test_domain_projection_filters_rule_locations(self, figure3_network):
        # restrict traversal to rule executions at node a only
        projection = domain_projection(["a"], domain_of=lambda node: str(node))
        spec = polynomial_query(name="proj", node_filter=projection)
        outcome = figure3_network.query_provenance(BEST_AC, spec)
        # the sp2@b derivation is projected away, leaving the direct one
        assert count_derivations(outcome.result) == 1
        assert set(outcome.result.literals()) == {"link(a,c,5)"}


class TestTraversalOrders:
    def test_all_orders_agree_on_result(self, grid_network):
        target = None
        for node, row in grid_network.tuples("bestPathCost"):
            fact = Fact("bestPathCost", row)
            outcome = grid_network.query_provenance(
                fact, derivation_count_query(name="probe")
            )
            if outcome.result >= 3:
                target = fact
                break
        assert target is not None, "expected a multi-derivation tuple on the grid"
        bfs = grid_network.query_provenance(
            target, derivation_count_query(name="t-bfs", traversal=TraversalOrder.BFS)
        )
        dfs = grid_network.query_provenance(
            target, derivation_count_query(name="t-dfs", traversal=TraversalOrder.DFS)
        )
        assert bfs.result == dfs.result

    def test_threshold_query_can_undercount_but_saves_messages(self, grid_network):
        target = None
        for node, row in grid_network.tuples("bestPathCost"):
            fact = Fact("bestPathCost", row)
            probe = grid_network.query_provenance(
                fact, derivation_count_query(name="probe2")
            )
            if probe.result > 3:
                target = fact
                exact = probe.result
                break
        assert target is not None
        grid_network.stats.reset()
        full = grid_network.query_provenance(
            target, derivation_count_query(name="full", traversal=TraversalOrder.BFS)
        )
        full_messages = grid_network.stats.total_messages(["prov"])
        grid_network.stats.reset()
        thresholded = grid_network.query_provenance(
            target,
            derivation_count_query(
                name="thr", traversal=TraversalOrder.DFS_THRESHOLD, threshold=3
            ),
        )
        threshold_messages = grid_network.stats.total_messages(["prov"])
        assert full.result == exact
        assert thresholded.result >= 3
        assert threshold_messages <= full_messages

    def test_random_moonwalk_explores_subset(self, grid_network):
        target = None
        for node, row in grid_network.tuples("bestPathCost"):
            fact = Fact("bestPathCost", row)
            probe = grid_network.query_provenance(
                fact, derivation_count_query(name="probe3")
            )
            if probe.result >= 3:
                target = fact
                exact = probe.result
                break
        assert target is not None
        moonwalk = grid_network.query_provenance(
            target,
            derivation_count_query(
                name="moon", traversal=TraversalOrder.RANDOM_MOONWALK, moonwalk_width=1
            ),
        )
        # a single random walk explores at most one derivation per vertex
        assert 1 <= moonwalk.result <= exact

    def test_node_set_threshold_query(self, grid_network):
        node, row = grid_network.tuples("bestPathCost")[0]
        spec = node_set_query(
            name="ns-thr", traversal=TraversalOrder.DFS_THRESHOLD, threshold=2
        )
        outcome = grid_network.query_provenance(Fact("bestPathCost", row), spec)
        assert len(outcome.result) >= 1
