"""Fault recovery across process boundaries.

The serial half of the fault subsystem is covered by test_faults.py.
This file exercises the parts that only exist once real processes are
involved: the sharded engine executing a fault plan inside its workers,
the supervisor SIGKILLing and reviving a shard worker from its command
log, and the service client's idempotent request retransmission against
a live server.
"""

from __future__ import annotations

import pytest

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode
from repro.experiments.trials import chaos_topology
from repro.faults import convergence_digest
from repro.net.sharding import ShardedExspanNetwork
from repro.net.topology import ring_topology
from repro.protocols import mincost_program
from repro.service import ServiceClient, ServiceThread

SIZE = 6


@pytest.fixture(scope="module")
def reference():
    """Convergence digest of the fault-free serial run (the oracle)."""
    network = ExspanNetwork(
        chaos_topology(SIZE, seed=0),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE, seed=0),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return convergence_digest(network)


def run_sharded(faults=None, supervise=False):
    with ShardedExspanNetwork(
        chaos_topology(SIZE, seed=0),
        mincost_program(),
        mode=ProvenanceMode.REFERENCE,
        shards=2,
        seed=0,
        faults=faults,
        supervise=supervise,
    ) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        return (
            sharded.convergence_digest(),
            sharded.supervisor_stats(),
            sharded.fault_stats(),
        )


# ---------------------------------------------------------------------- #
# fault plans executed inside shard workers
# ---------------------------------------------------------------------- #
class TestShardedConvergence:
    def test_drops_converge_across_shards(self, reference):
        digest, _, stats = run_sharded("seed=3; attempts=8; drop:*->*:p=0.25,n=20")
        assert stats["drops"] > 0
        assert stats["retransmits"] > 0
        assert digest == reference

    def test_crash_restart_converges_across_shards(self, reference):
        digest, _, stats = run_sharded("attempts=8; crash:n1@0.001:restart=0.02")
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1
        assert digest == reference

    def test_sharded_run_is_bit_reproducible(self):
        spec = "seed=7; attempts=8; drop:*->*:p=0.2,n=15; delay:*->*:p=0.2,d=0.003"
        first, _, first_stats = run_sharded(spec)
        second, _, second_stats = run_sharded(spec)
        assert first == second
        assert first_stats == second_stats


# ---------------------------------------------------------------------- #
# supervisor: SIGKILL between barrier windows, revive, replay
# ---------------------------------------------------------------------- #
class TestWorkerSupervision:
    def test_sigkilled_worker_is_revived_and_converges(self, reference):
        digest, stats, _ = run_sharded("attempts=8; killworker:1@1", supervise=True)
        assert stats["workers_killed"] >= 1
        assert stats["restarts"] >= 1
        assert stats["logged_commands"] > 0
        assert digest == reference

    def test_kill_plan_forces_supervision_on(self, reference):
        # Without an explicit supervise=True the engine must still turn
        # supervision on — a kill plan is unsurvivable otherwise.
        digest, stats, _ = run_sharded("attempts=8; killworker:0@1")
        assert stats["supervised"] == 1
        assert stats["workers_killed"] >= 1
        assert digest == reference

    def test_unsupervised_runs_log_nothing(self, reference):
        digest, stats, _ = run_sharded()
        assert stats == {
            "supervised": 0,
            "restarts": 0,
            "workers_killed": 0,
            "logged_commands": 0,
        }
        assert digest == reference


# ---------------------------------------------------------------------- #
# service client: bounded retry, reconnect, idempotent retransmission
# ---------------------------------------------------------------------- #
def service_network():
    network = ExspanNetwork(
        ring_topology(5, seed=0), mincost_program(), config=ExspanConfig(seed=0)
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


QUERY = {
    "fact": {"name": "bestPathCost", "values": ["n0", "n1", 1]},
    "spec": {"kind": "derivations"},
}


class TestClientResilience:
    def test_connect_gives_up_after_bounded_attempts(self):
        with pytest.raises(ConnectionError, match="after 2 attempts"):
            ServiceClient(
                "127.0.0.1", 1, connect_attempts=2, connect_backoff=0.001
            )

    def test_retransmitted_request_is_replayed_not_reexecuted(self):
        with ServiceThread(service_network()) as service:
            with ServiceClient(*service.address) as client:
                request = client._request("query", QUERY)
                first = client._request_once(request)
                # Same client id + request id again: the server must hand
                # back the cached response instead of re-running the query.
                second = client._request_once(request)
                assert first == second
                assert service._server.idempotent_replays == 1

    def test_broken_connection_redials_and_retries_same_id(self):
        with ServiceThread(service_network()) as service:
            with ServiceClient(*service.address, call_retries=1) as client:
                before = client.call("query", **QUERY)
                # Sever the transport underneath the client; the next call
                # must redial and retransmit rather than surface an OSError.
                client._sock.close()
                after = client.call("query", **QUERY)
                assert client.reconnects == 1
                # A fresh request id means a fresh engine query id in the
                # meta block; the result body must be unchanged.
                def strip(payload):
                    return {k: v for k, v in payload.items() if k != "meta"}

                assert strip(after) == strip(before)

    def test_client_id_is_stable_across_reconnects(self):
        with ServiceThread(service_network()) as service:
            with ServiceClient(*service.address) as client:
                identity = client.client_id
                client._sock.close()
                client._reconnect()
                assert client.client_id == identity
