"""Repo-root pytest configuration: make ``src/`` importable everywhere.

Defers to the shared helper in ``_bootstrap.py`` so the path logic exists
exactly once (``benchmarks/conftest.py`` imports the same helper).
"""

from _bootstrap import ensure_src_on_path

ensure_src_on_path()
