#!/usr/bin/env python3
"""Quickstart: run MINCOST with reference-based provenance and query it.

This walks through the paper's running example (Figures 3-5): the four-node
topology, the MINCOST program, the provenance graph of
``bestPathCost(@a,c,5)``, and several query customizations.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    ExspanConfig,
    ExspanNetwork,
    Granularity,
    GranularitySpec,
    ProvenanceMode,
    QueryRequest,
    bdd_query,
    count_derivations,
    derivation_count_query,
    node_set_query,
    polynomial_query,
    tuple_vid,
)
from repro.datalog import Fact, StandaloneNetwork
from repro.net import LinkSpec, Topology
from repro.protocols import MINCOST_SOURCE, mincost_program, pathvector_program


def build_figure3_topology() -> Topology:
    """The example network of Figure 3: four nodes, five symmetric links."""
    topology = Topology(name="figure3")
    for source, destination, cost in [
        ("a", "b", 3),
        ("a", "c", 5),
        ("b", "c", 2),
        ("b", "d", 5),
        ("c", "d", 3),
    ]:
        topology.add_link(source, destination, LinkSpec(latency=0.001, cost=cost))
    return topology


def main() -> None:
    print("The MINCOST program (Figure 1):")
    print(MINCOST_SOURCE)

    # 1. Build a provenance-aware network: the program is automatically
    #    rewritten (Algorithm 1) so every node maintains prov / ruleExec.
    network = ExspanNetwork(
        build_figure3_topology(),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    fixpoint = network.run_to_fixpoint()
    print(f"Fixpoint reached at t={fixpoint * 1000:.1f} ms; "
          f"{network.maintenance_bytes()} bytes of protocol traffic")
    counts = network.provenance_row_counts()
    print(f"Provenance tables: {counts['prov']} prov rows, "
          f"{counts['ruleExec']} ruleExec rows across 4 nodes\n")

    # 2. Query the provenance of bestPathCost(@a,c,5) — the paper's Figure 5.
    best_ac = Fact("bestPathCost", ("a", "c", 5))
    polynomial = network.execute(QueryRequest(fact=best_ac, spec=polynomial_query(name="poly")))
    print("Provenance polynomial of bestPathCost(@a,c,5):")
    print(f"  {polynomial.result}")
    print(f"  derivations: {count_derivations(polynomial.result)}, "
          f"query latency {polynomial.latency * 1000:.1f} ms\n")

    # 3. Other customizations: node set, derivation count, condensed BDD.
    nodes = network.execute(QueryRequest(fact=best_ac, spec=node_set_query(name="nodes")))
    print(f"Nodes involved in the derivation: {sorted(nodes.result)}")

    count = network.execute(
        QueryRequest(fact=best_ac, spec=derivation_count_query(name="count"))
    )
    print(f"#DERIVATIONS: {count.result}")

    node_level = network.execute(
        QueryRequest(
            fact=best_ac,
            spec=bdd_query(name="bdd", granularity=GranularitySpec(Granularity.NODE)),
        )
    )
    print("Node-level absorption provenance (BDD support): "
          f"{sorted(node_level.result.support())}  "
          "(<a + a*b> condenses to <a>)\n")

    # 4. Dynamics: delete the direct a-c link and watch provenance change.
    print("Deleting link a-c ...")
    network.remove_link("a", "c")
    network.run_to_fixpoint()
    after = network.execute(QueryRequest(fact=best_ac, spec=polynomial_query(name="poly2")))
    print("Provenance after deletion (only the path through b remains):")
    print(f"  {after.result}")

    # 5. Inspect the provenance graph directly (Figure 5 rendering).
    graph = network.provenance_graph()
    vid = tuple_vid("bestPathCost", ("a", "c", 5))
    print("\nGraphviz rendering of the provenance graph rooted at "
          "bestPathCost(@a,c,5):")
    print(graph.to_dot(root=vid))

    # 6. EXPLAIN: how the cost-based planner evaluates a PATHVECTOR rule.
    #    Every engine compiles one plan per (rule, delta position); the plan
    #    below shows the join order and secondary-index usage for rule pv2
    #    (path extension), the hottest join of the PATHVECTOR fixpoint.
    standalone = StandaloneNetwork(["a", "b", "c", "d"], pathvector_program())
    for source, destination, cost in [
        ("a", "b", 3), ("b", "a", 3), ("b", "c", 2), ("c", "b", 2),
        ("c", "d", 3), ("d", "c", 3),
    ]:
        standalone.insert(Fact("link", (source, destination, cost)))
    standalone.run()
    engine = standalone.engine("a")
    print("\nCompiled join plans for PATHVECTOR rule pv2 "
          "(path(@S,D,C,P) :- link(@Z,S,C1), bestPath(@Z,D,C2,P2), ...):")
    print(engine.explain("pv2"))
    stats = standalone.planner_stats()
    print(f"\nPlanner counters across the 4 nodes: "
          f"{stats['plans_compiled']} plans compiled, "
          f"{stats['indexes_registered']} indexes registered, "
          f"{stats['index_lookups']} index lookups, "
          f"{stats['tuples_scanned']} tuples scanned")


if __name__ == "__main__":
    main()
