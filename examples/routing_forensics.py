#!/usr/bin/env python3
"""Routing forensics at scale: caching, traversal orders and representations.

This example exercises the query-optimization machinery of Section 6 on a
larger MINCOST deployment (a grid, where equal-cost multipaths give tuples
many alternative derivations):

* distributed result caching and its invalidation after a link change,
* BFS vs DFS vs DFS-threshold traversal for a threshold query
  ("does this entry have more than three derivations?"),
* polynomial vs condensed BDD result representations,
* a random moonwalk that samples one derivation path.

Run with::

    python examples/routing_forensics.py
"""

from __future__ import annotations

from repro.core import (
    ExspanConfig,
    ExspanNetwork,
    ProvenanceMode,
    QueryRequest,
    TraversalOrder,
    bdd_query,
    derivation_count_query,
    polynomial_query,
)
from repro.datalog import Fact
from repro.net import grid_topology
from repro.protocols import mincost_program


def measure(network: ExspanNetwork, fact: Fact, spec) -> tuple:
    network.stats.reset()
    result = network.execute(QueryRequest(fact=fact, spec=spec))
    return result, network.query_bytes(), network.stats.total_messages(["prov"])


def main() -> None:
    network = ExspanNetwork(
        grid_topology(5, 5),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    network.run_to_fixpoint()
    print(f"25-node grid converged; {network.provenance_row_counts()['prov']} prov rows")

    # The corner-to-corner entry has many equal-cost shortest paths.
    target = Fact("bestPathCost", ("g0_0", "g4_4", 8))
    exact = network.execute(
        QueryRequest(fact=target, spec=derivation_count_query(name="exact"))
    )
    print(f"\nbestPathCost(g0_0, g4_4, 8) has {exact.result} alternative derivations")

    # --- traversal orders for the threshold query "more than 3 derivations?"
    print("\nThreshold query (>3 derivations?) under different traversal orders:")
    for label, spec in [
        ("BFS", derivation_count_query(name="f-bfs", traversal=TraversalOrder.BFS)),
        ("DFS", derivation_count_query(name="f-dfs", traversal=TraversalOrder.DFS)),
        ("DFS-threshold", derivation_count_query(
            name="f-thr", traversal=TraversalOrder.DFS_THRESHOLD, threshold=4)),
        ("random moonwalk", derivation_count_query(
            name="f-moon", traversal=TraversalOrder.RANDOM_MOONWALK, moonwalk_width=1)),
    ]:
        outcome, size, messages = measure(network, target, spec)
        print(f"  {label:<16s}: answer={outcome.result:>4d}  "
              f"messages={messages:>3d}  bytes={size:>6d}  "
              f"latency={outcome.latency * 1000:6.1f} ms")

    # --- representations: polynomial vs condensed BDD
    print("\nResult representations:")
    for label, spec in [
        ("polynomial", polynomial_query(name="rep-poly")),
        ("BDD (condensed)", bdd_query(name="rep-bdd")),
    ]:
        outcome, size, messages = measure(network, target, spec)
        detail = (
            f"{len(set(outcome.result.literals()))} distinct literals"
            if label == "polynomial"
            else f"{outcome.result.node_count()} BDD nodes"
        )
        print(f"  {label:<16s}: bytes={size:>6d}  ({detail})")

    # --- caching: repeat queries get cheaper, link changes invalidate
    cached = polynomial_query(name="cached", use_cache=True)
    _, cold_bytes, cold_msgs = measure(network, target, cached)
    _, warm_bytes, warm_msgs = measure(network, target, cached)
    print(f"\nCaching: cold query {cold_msgs} messages / {cold_bytes} bytes, "
          f"repeat {warm_msgs} messages / {warm_bytes} bytes")
    print(f"Cache stats: {network.cache_stats()}")

    print("Removing one link on the diagonal and re-querying ...")
    network.remove_link("g2_2", "g2_3")
    network.run_to_fixpoint()
    refreshed, bytes_after, msgs_after = measure(
        network, Fact("bestPathCost", ("g0_0", "g4_4", 8)), cached
    )
    result = network.execute(
        QueryRequest(
            fact=Fact("bestPathCost", ("g0_0", "g4_4", 8)),
            spec=derivation_count_query(name="after"),
        )
    )
    print(
        f"After invalidation: {msgs_after} messages / {bytes_after} bytes, "
        f"derivations now {result.result}"
    )


if __name__ == "__main__":
    main()
