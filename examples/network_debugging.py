#!/usr/bin/env python3
"""Network debugging: trace why a route exists and why a packet took its path.

This is the paper's network-forensics motivation: an operator notices
traffic between two stub nodes and wants to know (1) which links and nodes
produced the route currently installed, and (2) what changes when a link on
that route fails.

The example runs PATHVECTOR + PACKETFORWARD on a transit-stub topology with
reference-based provenance, sends a packet across the network, then uses
provenance queries to explain the route and to diagnose the failover after a
link failure.

Run with::

    python examples/network_debugging.py
"""

from __future__ import annotations

from repro.core import (
    ExspanConfig,
    ExspanNetwork,
    ProvenanceMode,
    QueryRequest,
    count_derivations,
    node_set_query,
    polynomial_query,
)
from repro.datalog import Fact
from repro.net import transit_stub_topology
from repro.protocols import packet_event, packetforward_program, pathvector_program


def find_route(network: ExspanNetwork, source: str, destination: str):
    for _, row in network.tuples("bestPath"):
        if row[0] == source and row[1] == destination:
            return row
    return None


def main() -> None:
    # A single GT-ITM style domain, scaled down: 4 transit nodes, 3 stubs
    # of 3 nodes each per transit node (40 nodes total).
    topology = transit_stub_topology(domains=1, nodes_per_stub=3, seed=7)
    program = pathvector_program().extended(packetforward_program(), "pv+fwd")
    network = ExspanNetwork(
        topology, program, config=ExspanConfig(mode=ProvenanceMode.REFERENCE)
    )
    network.seed_links()
    network.run_to_fixpoint()
    print(f"{topology.node_count()} nodes, {topology.link_count()} links; "
          f"routes converged at t={network.now:.3f} s")

    source, destination = "s0_0_0_1", "s0_3_2_2"
    route = find_route(network, source, destination)
    print(f"\nInstalled route {source} -> {destination}: "
          f"{' -> '.join(route[3])} (cost {route[2]})")

    # Send a packet along the route and confirm delivery.
    engine = network.engine(source)
    engine.insert(packet_event(source, source, destination, "probe-packet"))
    engine.run()
    network.run_to_fixpoint()
    delivered = [
        row for _, row in network.tuples("recvPacket") if row[3] == "probe-packet"
    ]
    print(f"Packet delivered at {delivered[0][0]}" if delivered else "Packet lost!")

    # Why does this route exist?  Query its provenance.
    route_fact = Fact("bestPath", route)
    explanation = network.execute(
        QueryRequest(fact=route_fact, spec=polynomial_query(name="explain"))
    )
    participants = network.execute(
        QueryRequest(fact=route_fact, spec=node_set_query(name="who"))
    )
    print("\nWhy does this route exist?")
    print(f"  base links involved : {sorted(set(explanation.result.literals()))}")
    print(f"  nodes involved      : {sorted(participants.result)}")
    print(f"  alternative ways    : {count_derivations(explanation.result)}")

    # Break the first link on the path and diagnose the failover.
    first_hop, second_hop = route[3][0], route[3][1]
    print(f"\nFailing link {first_hop} <-> {second_hop} ...")
    network.remove_link(first_hop, second_hop)
    network.run_to_fixpoint()

    new_route = find_route(network, source, destination)
    if new_route is None:
        print("No alternative route exists - the stub is disconnected.")
        return
    print(f"New route: {' -> '.join(new_route[3])} (cost {new_route[2]})")
    diagnosis = network.execute(
        QueryRequest(fact=Fact("bestPath", new_route), spec=node_set_query(name="who2"))
    )
    print(f"Nodes responsible for the new route: {sorted(diagnosis.result)}")
    print(f"\nTotal maintenance traffic: {network.maintenance_bytes() / 1e3:.1f} KB, "
          f"query traffic: {network.query_bytes() / 1e3:.1f} KB")


if __name__ == "__main__":
    main()
