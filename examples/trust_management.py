#!/usr/bin/env python3
"""Distributed trust management with trust-domain provenance.

The paper's third use case: a node should only accept network state whose
derivation involves parties it trusts.  Here the network spans two GT-ITM
domains (think: two administrative domains / ASes).  Node-level and
trust-domain-level provenance let each node check, for any routing entry,
*who* was involved in deriving it — and condensed (BDD) provenance shows
when the entry is still acceptable even if some participants are untrusted
(because an alternative derivation avoids them).

Run with::

    python examples/trust_management.py
"""

from __future__ import annotations

from repro.core import (
    ExspanConfig,
    ExspanNetwork,
    Granularity,
    GranularitySpec,
    ProvenanceMode,
    QueryRequest,
    derivability_query,
    node_set_query,
    polynomial_query,
    prefix_domain_map,
)
from repro.datalog import Fact
from repro.net import transit_stub_topology
from repro.protocols import mincost_program


def main() -> None:
    # Two domains, scaled down to 2-node stubs: ~56 nodes in total.
    topology = transit_stub_topology(domains=2, nodes_per_stub=2, seed=11)
    network = ExspanNetwork(
        topology, mincost_program(), config=ExspanConfig(mode=ProvenanceMode.REFERENCE)
    )
    network.seed_links()
    network.run_to_fixpoint()
    domain_of = prefix_domain_map()
    domains = sorted({domain_of(node) for node in topology.nodes})
    print(f"{topology.node_count()} nodes across domains {domains}")

    # Pick a route that crosses domains.
    cross_domain = None
    for _, row in network.tuples("bestPathCost"):
        if domain_of(row[0]).lstrip("st") != domain_of(row[1]).lstrip("st"):
            participants = network.execute(
                QueryRequest(
                    fact=Fact("bestPathCost", row),
                    spec=node_set_query(name="participants"),
                )
            ).result
            if len({domain_of(node) for node in participants}) > 1:
                cross_domain = row
                break
    assert cross_domain is not None
    fact = Fact("bestPathCost", cross_domain)
    print(f"\nRouting entry under scrutiny: bestPathCost{cross_domain}")

    node_granularity = GranularitySpec(Granularity.NODE)
    domain_granularity = GranularitySpec(Granularity.TRUST_DOMAIN, domain_of=domain_of)

    # Who was involved, at node and at domain granularity?
    nodes_involved = network.execute(
        QueryRequest(fact=fact, spec=node_set_query(name="who"))
    ).result
    domains_involved = sorted({domain_of(node) for node in nodes_involved})
    print(f"Nodes involved   : {sorted(nodes_involved)}")
    print(f"Domains involved : {domains_involved}")

    # Node-level provenance polynomial (the paper's <a + a*b> style).
    node_level = network.execute(
        QueryRequest(
            fact=fact,
            spec=polynomial_query(name="node-poly", granularity=node_granularity),
        )
    )
    print(f"Node-level provenance polynomial:\n  {node_level.result}")

    # Trust policies: which trusted sets make this entry acceptable?
    print("\nAccess-control decisions (derivability under a trusted set):")
    for label, trusted in [
        ("trust every participant", set(map(str, nodes_involved))),
        ("trust only the first domain's nodes",
         {str(node) for node in nodes_involved if domain_of(node).endswith("0")}),
        ("trust nobody", set()),
    ]:
        verdict = network.execute(
            QueryRequest(
                fact=fact,
                spec=derivability_query(
                    name=f"policy-{len(trusted)}",
                    trusted=trusted,
                    granularity=node_granularity,
                ),
            )
        )
        print(f"  {label:<40s} -> {'ACCEPT' if verdict.result else 'REJECT'}")

    # Domain-level check: is the entry derivable using only domain-0 parties?
    domain_zero = [domain for domain in domains_involved if domain.endswith("0")]
    verdict = network.execute(
        QueryRequest(
            fact=fact,
            spec=derivability_query(
                name="domain-policy",
                trusted=domain_zero,
                granularity=domain_granularity,
            ),
        )
    )
    print(f"\nDerivable inside domains {domain_zero} only? "
          f"{'yes' if verdict.result else 'no'}")


if __name__ == "__main__":
    main()
