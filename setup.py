"""Setuptools packaging script.

The development environment for this reproduction is offline and has no
``wheel`` package, which rules out PEP 517 editable installs (they require
the ``bdist_wheel`` command).  Keeping the project metadata here and leaving
``pyproject.toml`` without a ``[project]`` table lets ``pip install -e .``
use the legacy ``setup.py develop`` path, which works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ExSPAN: efficient querying and maintenance of network provenance "
        "at Internet-scale (SIGMOD 2010) - full Python reproduction"
    ),
    long_description=open("README.md", encoding="utf-8").read()
    if __import__("os").path.exists("README.md")
    else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "numpy", "networkx"],
    },
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Database",
        "Topic :: System :: Networking",
    ],
    keywords=(
        "provenance declarative-networking datalog distributed-systems "
        "network-simulation"
    ),
)
